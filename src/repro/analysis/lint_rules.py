"""The built-in repo-specific lint rules (R001-R008).

Each rule targets a defect class that a previous PR had to fix *after* a
runtime path exposed it; the rules make the next instance a static finding.
Importing this module registers every rule with the plugin framework in
:mod:`repro.analysis.rules`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .findings import ERROR, WARNING, Finding
from .rules import (FileContext, LintRule, attr_chain, register_rule,
                    scope_statements)

__all__ = ["RngDisciplineRule", "SampleSiteNameRule", "EagerMaterializationRule",
           "SeedBeforeSamplingRule", "SizedVectorizedContextRule",
           "SilentExceptionSwallowRule", "AsyncBlockingCallRule",
           "BackendBypassRule"]

_NUMPY_ALIASES = ("np", "numpy")

#: legacy global-state samplers of ``np.random`` (module-level functions that
#: draw from the hidden global ``RandomState``, invisible to ``set_rng_seed``)
_LEGACY_SAMPLERS = frozenset({
    "seed", "rand", "randn", "random", "random_sample", "ranf", "sample",
    "normal", "uniform", "randint", "random_integers", "choice", "shuffle",
    "permutation", "standard_normal", "binomial", "poisson", "beta", "gamma",
    "exponential", "multivariate_normal", "laplace", "lognormal", "dirichlet",
})


@register_rule
class RngDisciplineRule(LintRule):
    """R001: stochastic code must draw from ``repro.ppl.rng.get_rng()``.

    A bare ``np.random.default_rng()`` (no seed argument) and any legacy
    ``np.random.<sampler>`` call draw entropy that silently escapes
    ``repro.ppl.rng.set_rng_seed`` — the exact defect class fixed for
    ``nn/init.py``, ``nn/tensor.py``, ``nn/functional.py`` and ``nn/data.py``
    in this PR.  Seeded ``np.random.default_rng(seed)`` construction stays
    legal (it is deterministic), and ``rng.py`` itself — the module that owns
    the global generator — is exempt.
    """

    rule_id = "R001"
    severity = ERROR
    autofixable = True  # mechanical rewrite to repro.ppl.rng.get_rng()
    description = ("stochastic fallback escapes set_rng_seed: use "
                   "repro.ppl.rng.get_rng(), not bare np.random.default_rng() "
                   "or legacy np.random.<sampler> calls")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.path.name == "rng.py":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if len(chain) != 3 or chain[0] not in _NUMPY_ALIASES or chain[1] != "random":
                continue
            if chain[2] == "default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    ctx, node,
                    "bare np.random.default_rng() draws fresh OS entropy that "
                    "set_rng_seed cannot govern; fall back to "
                    "repro.ppl.rng.get_rng() (or take a seeded generator)")
            elif chain[2] in _LEGACY_SAMPLERS:
                yield self.finding(
                    ctx, node,
                    f"legacy np.random.{chain[2]}() uses the hidden global "
                    "RandomState, invisible to repro.ppl.rng.set_rng_seed; "
                    "draw from repro.ppl.rng.get_rng() instead")


_SITE_PRIMITIVES = frozenset({"sample", "param", "deterministic"})


def _is_formatted_string(node: ast.AST) -> bool:
    """True for f-strings, ``%``/``+`` string composition and ``str.format``."""
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Mod, ast.Add)):
        return any(_is_string_literal(side) or _is_formatted_string(side)
                   for side in (node.left, node.right))
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr == "format" and (_is_string_literal(node.func.value)
                                           or _is_formatted_string(node.func.value)):
            return True
    return False


def _is_string_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


@register_rule
class SampleSiteNameRule(LintRule):
    """R002: site names must be unique literals within one model function.

    Two ``sample``/``param`` statements with the same literal name inside one
    function collide in the trace (``Trace.add_node`` raises at runtime);
    dynamically-formatted names (f-strings, ``%``/``+`` composition,
    ``str.format``) defeat both this check and guide/site matching, so they
    are flagged too.  Plain variable names (e.g. a loop over
    ``param_dists.items()``) are deliberate framework idiom and stay legal.
    """

    rule_id = "R002"
    severity = ERROR
    description = ("duplicate or dynamically-formatted sample/param site name "
                   "within one model function")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        functions = [node for node in ast.walk(ctx.tree)
                     if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]
        for fn in functions:
            seen: Dict[str, int] = {}
            for node in scope_statements(fn):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                chain = attr_chain(node.func)
                if not chain or chain[-1] not in _SITE_PRIMITIVES:
                    continue
                name_arg = node.args[0]
                if _is_string_literal(name_arg):
                    site = name_arg.value
                    if site in seen:
                        yield self.finding(
                            ctx, node,
                            f"site name {site!r} is used by more than one "
                            f"{chain[-1]} statement in {fn.name!r} (first use at "
                            f"line {seen[site]}); duplicate names collide in "
                            "the execution trace")
                    else:
                        seen[site] = node.lineno
                elif _is_formatted_string(name_arg):
                    yield self.finding(
                        ctx, node,
                        f"dynamically-formatted {chain[-1]} site name in "
                        f"{fn.name!r}: formatted names defeat static "
                        "duplicate/coverage checking — use a literal, or pass "
                        "a pre-built variable and suppress with "
                        "# repro: noqa[R002] where the formatting is deliberate")


_HOT_PACKAGES = frozenset({"nn", "ppl", "render"})
_MATERIALIZERS = frozenset({"asarray", "array"})


def _in_hot_package(ctx: FileContext) -> bool:
    parts = ctx.path.parts
    for index, part in enumerate(parts):
        if part == "repro" and set(parts[index + 1:]) & _HOT_PACKAGES:
            return True
    return False


@register_rule
class EagerMaterializationRule(LintRule):
    """R003: no eager ``.data`` / ``np.asarray`` materialization in hot paths.

    Inside ``repro/nn``, ``repro/ppl`` and ``repro/render`` — the packages the
    lazy-graph ROADMAP item will rebuild around deferred op graphs —
    materializing a *freshly computed* value (``f(...).data``,
    ``np.asarray(f(...))``, ``f(...).numpy()``) forces evaluation at that op
    and severs the autograd/op-graph chain.  Reading ``.data`` from a bound
    name (exports, I/O boundaries) stays legal; the rule only fires on call
    results, where the intermediate graph is discarded before anything else
    can see it.  ``.numpy()`` on a call result is additionally exempt inside
    ``return`` statements — a returned array is a leaf leaving the hot path,
    not an intermediate that silently breaks fusion.
    Files outside the three hot-path packages are exempt.
    """

    rule_id = "R003"
    severity = WARNING
    description = ("eager .data / np.asarray / .numpy() materialization of a "
                   "freshly computed value inside a repro/nn|ppl|render hot "
                   "path")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_hot_package(ctx):
            return
        in_return = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Return) and node.value is not None:
                for child in ast.walk(node.value):
                    in_return.add(id(child))
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call) and not node.args
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "numpy"
                    and isinstance(node.func.value, ast.Call)
                    and id(node) not in in_return):
                yield self.finding(
                    ctx, node,
                    ".numpy() on an intermediate call result forces "
                    "realization mid-chain and silently breaks elementwise "
                    "fusion; bind the tensor and realize it at the boundary "
                    "(or return it) instead")
                continue
            if (isinstance(node, ast.Attribute) and node.attr == "data"
                    and isinstance(node.value, ast.Call)):
                yield self.finding(
                    ctx, node,
                    ".data on a call result materializes the value eagerly and "
                    "discards its op graph; bind the tensor first (or keep the "
                    "computation in Tensor ops) so the lazy-graph engine can "
                    "defer it")
            elif isinstance(node, ast.Call) and node.args:
                chain = attr_chain(node.func)
                if (len(chain) == 2 and chain[0] in _NUMPY_ALIASES
                        and chain[1] in _MATERIALIZERS
                        and isinstance(node.args[0], ast.Call)):
                    yield self.finding(
                        ctx, node,
                        f"np.{chain[1]}() on a call result materializes the "
                        "value eagerly in a hot path; bind it first or stay in "
                        "Tensor ops")


def _module_functions(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    return {node.name: node for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _is_register_decorator(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        node = node.func
    return attr_chain(node)[-1:] == ("register",)


def _calls_seed_all(fn: ast.AST) -> bool:
    for node in scope_statements(fn):
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain[-1:] == ("seed_all",):
                return True
    return False


def _called_module_functions(fn: ast.AST, functions: Dict[str, ast.FunctionDef]
                             ) -> Set[str]:
    # any Load of a module-level function name counts as a potential call —
    # runners dispatch through partial(...) tables, so direct Name calls alone
    # would miss the real call graph
    called: Set[str] = set()
    for node in scope_statements(fn):
        if (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
                and node.id in functions):
            called.add(node.id)
    return called


@register_rule
class SeedBeforeSamplingRule(LintRule):
    """R004: registered experiment runners must call ``config.seed_all()``.

    A runner registered with ``@register(...)`` that never reaches a
    ``seed_all()`` call (directly or through same-module helper functions)
    produces artifacts whose RNG stream depends on whatever ran before it —
    the registry's determinism contract is broken silently.  The check is the
    static approximation "``seed_all`` is reachable in the runner's
    same-module call graph"; cross-module delegation should go through a
    helper that seeds first.
    """

    rule_id = "R004"
    severity = ERROR
    description = ("experiment runner registered via @register never calls "
                   "config.seed_all() (directly or via same-module helpers)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        functions = _module_functions(ctx.tree)
        for fn in functions.values():
            if not any(_is_register_decorator(d) for d in fn.decorator_list):
                continue
            visited: Set[str] = set()
            frontier: List[str] = [fn.name]
            seeded = False
            while frontier and not seeded:
                name = frontier.pop()
                if name in visited:
                    continue
                visited.add(name)
                node = functions[name]
                if _calls_seed_all(node):
                    seeded = True
                    break
                frontier.extend(_called_module_functions(node, functions) - visited)
            if not seeded:
                yield self.finding(
                    ctx, fn,
                    f"registered runner {fn.name!r} never calls "
                    "config.seed_all(): its RNG stream (and artifact) depends "
                    "on whatever executed before it")


def _has_sizes(call: ast.Call) -> bool:
    if len(call.args) >= 2:
        return True
    for keyword in call.keywords:
        if keyword.arg == "sizes":
            return not (isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is None)
    return False


def _body_has_sample_call(body: List[ast.AST]) -> Optional[ast.Call]:
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call) and attr_chain(node.func)[-1:] == ("sample",):
            return node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return None


@register_rule
class SizedVectorizedContextRule(LintRule):
    """R005: ``vectorized_samples`` contexts with sampling must declare sizes.

    A ``sample`` statement executing inside a size-less
    ``vectorized_samples`` context draws *one* value silently shared by every
    particle — the PR-5 bug class.  Whenever the lexical body of the ``with``
    block contains a sample call, the context must declare its axis sizes
    (``vectorized_samples(1, sizes=(K,))``) so the runtime can stack one
    independent draw per particle.
    """

    rule_id = "R005"
    severity = ERROR
    description = ("vectorized_samples context whose body samples must declare "
                   "axis sizes (sizes=...) so draws stack per particle")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                call = item.context_expr
                if not isinstance(call, ast.Call):
                    continue
                if attr_chain(call.func)[-1:] != ("vectorized_samples",):
                    continue
                if _has_sizes(call):
                    continue
                sample_call = _body_has_sample_call(node.body)
                if sample_call is not None:
                    yield self.finding(
                        ctx, call,
                        "size-less vectorized_samples context contains a "
                        f"sample call (line {sample_call.lineno}): every "
                        "particle would share one draw — declare "
                        "sizes=(num_particles,) (or hoist the sampling out of "
                        "the context)")


_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _broad_handler_label(handler: ast.ExceptHandler) -> Optional[str]:
    """``"except:"``-style label when the handler catches (near-)everything."""
    if handler.type is None:
        return "bare except:"
    exceptions = (handler.type.elts if isinstance(handler.type, ast.Tuple)
                  else [handler.type])
    for node in exceptions:
        name = attr_chain(node)[-1:]
        if name and name[0] in _BROAD_EXCEPTIONS:
            return f"except {name[0]}"
    return None


def _is_silent_body(body: List[ast.stmt]) -> bool:
    """True when the handler body does nothing with the exception."""
    return all(isinstance(stmt, (ast.Pass, ast.Continue))
               or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
               for stmt in body)


@register_rule
class SilentExceptionSwallowRule(LintRule):
    """R006: no silently-swallowing broad exception handlers in ``repro``.

    A ``bare except:`` / ``except Exception:`` / ``except BaseException:``
    whose body is only ``pass``/``continue``/a constant hides *every* failure
    mode at once — including the crash/timeout/corruption classes the
    execution engine exists to surface, classify and retry.  Exactly this
    pattern turns a worker's real defect into a silent wrong result.  Narrow
    handlers (``except FileNotFoundError: pass``) stay legal: they document
    the one expected failure.  Deliberate broad swallows (e.g. best-effort
    cleanup) must say so with ``# repro: noqa[R006]``.  Files outside the
    ``repro`` package are exempt.
    """

    rule_id = "R006"
    severity = ERROR
    description = ("bare/broad except handler silently swallows all failures "
                   "(pass/continue body); catch the specific exception or "
                   "handle it")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if "repro" not in ctx.path.parts:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            label = _broad_handler_label(node)
            if label is None or not _is_silent_body(node.body):
                continue
            yield self.finding(
                ctx, node,
                f"{label} with a pass/continue body swallows every failure "
                "silently — crashes, timeouts and corruption included; catch "
                "the specific exception, or mark deliberate best-effort "
                "cleanup with # repro: noqa[R006]")


#: event-loop-blocking attribute calls: sync path/file I/O plus tensor
#: realization (``.numpy()`` may force a full lazy-graph evaluation)
_BLOCKING_METHODS = frozenset({"read_text", "write_text", "read_bytes",
                               "write_bytes", "numpy"})


def _in_serve_package(ctx: FileContext) -> bool:
    parts = ctx.path.parts
    for index, part in enumerate(parts):
        if part == "repro" and "serve" in parts[index + 1:]:
            return True
    return False


@register_rule
class AsyncBlockingCallRule(LintRule):
    """R007: no blocking calls inside ``async def`` bodies under ``repro/serve``.

    The serving layer coalesces requests on a single asyncio event loop; one
    blocking call inside an ``async def`` — ``time.sleep``, synchronous file
    I/O (``open``, ``Path.read_text``-family) or ``.numpy()`` realization of
    an unrealized tensor — stalls *every* in-flight request for its full
    duration, which is precisely the tail-latency defect the micro-batching
    benchmark gates against.  Sleep via ``await asyncio.sleep``, do file I/O
    before the loop starts (or in ``run_in_executor``), and realize tensors
    in the batcher's executor.  Nested synchronous ``def`` helpers are exempt
    (they run wherever they are called from); deliberate cases take
    ``# repro: noqa[R007]``.  Files outside ``repro/serve`` are exempt.
    """

    rule_id = "R007"
    severity = ERROR
    description = ("blocking call (time.sleep / sync file I/O / .numpy()) "
                   "inside an async def under repro/serve stalls the event "
                   "loop for every in-flight request")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_serve_package(ctx):
            return
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in scope_statements(fn):
                if not isinstance(node, ast.Call):
                    continue
                chain = attr_chain(node.func)
                if chain == ("time", "sleep"):
                    yield self.finding(
                        ctx, node,
                        f"time.sleep() inside async {fn.name!r} blocks the "
                        "event loop (and every coalesced request) — use "
                        "await asyncio.sleep()")
                elif chain == ("open",):
                    yield self.finding(
                        ctx, node,
                        f"synchronous open() inside async {fn.name!r} blocks "
                        "the event loop — load files before serving starts, "
                        "or run the I/O in an executor")
                elif (len(chain) >= 2 and chain[-1] in _BLOCKING_METHODS):
                    what = ("tensor realization" if chain[-1] == "numpy"
                            else "synchronous file I/O")
                    yield self.finding(
                        ctx, node,
                        f".{chain[-1]}() inside async {fn.name!r} is {what} "
                        "on the event loop — every in-flight request stalls "
                        "behind it; move it to the batcher's executor (or "
                        "before the loop starts)")


#: numpy functions with a route through the backend kernel surface — the
#: elementwise table (ufuncs), the kernel entry points (matmul/reductions/
#: cumsum) and their common aliases.  Deliberately *not* listed: allocation
#: (np.empty/zeros), movement (np.transpose/reshape/flip), indexing helpers
#: (np.unravel_index, np.add.at) and dtype machinery — those have no backend
#: route and stay plain numpy even on accelerated backends.
_BACKEND_KERNELS = frozenset({
    # linear algebra / scans
    "matmul", "einsum", "dot", "tensordot", "cumsum",
    # reductions
    "sum", "mean", "amax", "amin", "max", "min",
    # elementwise ufuncs mirrored by Backend.elementwise
    "add", "subtract", "multiply", "divide", "true_divide", "negative",
    "absolute", "exp", "log", "log1p", "sqrt", "tanh", "sin", "cos",
    "logaddexp", "maximum", "minimum", "power", "clip",
})


def _in_nn_outside_backends(ctx: FileContext) -> bool:
    parts = ctx.path.parts
    for index, part in enumerate(parts):
        if (part == "repro" and parts[index + 1:index + 2] == ("nn",)
                and "backends" not in parts[index + 2:]):
            return True
    return False


@register_rule
class BackendBypassRule(LintRule):
    """R008: kernel-shaped ``np.*`` calls in ``repro/nn`` bypass the backend.

    ``repro.nn`` dispatches every compute kernel — the elementwise table,
    matmul, im2col/pooling windowing, reductions, cumsum — through
    ``repro.nn.backends.get_backend()`` so an accelerated backend swaps the
    whole stack at one seam.  A direct ``np.exp(...)``/``np.matmul(...)``/
    ``np.lib.stride_tricks.as_strided(...)`` call inside ``repro/nn`` silently
    pins that op to numpy: it still *works* on the reference backend, which is
    exactly why only a static rule catches it before an accelerated run
    produces mixed-backend numerics.  The kernel implementations under
    ``repro/nn/backends/`` are exempt (they *are* the dispatch target), as is
    everything outside ``repro/nn``; scalar math belongs to ``math.*`` and
    deliberate escapes take ``# repro: noqa[R008]``.
    """

    rule_id = "R008"
    severity = WARNING
    description = ("direct np.* kernel call (ufunc compute / matmul / "
                   "reduction / cumsum / stride_tricks) inside repro/nn "
                   "bypasses the backend dispatch seam")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_nn_outside_backends(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if (len(chain) == 2 and chain[0] in _NUMPY_ALIASES
                    and chain[1] in _BACKEND_KERNELS):
                yield self.finding(
                    ctx, node,
                    f"np.{chain[1]}() is a compute kernel with a backend "
                    "route; dispatch through repro.nn.backends (get_backend() "
                    "or lazy.compute_eager) so accelerated backends see the "
                    "whole graph")
            elif (chain[-2:] == ("stride_tricks", "as_strided")
                  and chain[0] in _NUMPY_ALIASES) or chain == ("as_strided",):
                yield self.finding(
                    ctx, node,
                    "as_strided windowing is kernel layout work; use the "
                    "backend's im2col/pooling entry points so accelerated "
                    "backends can run their own windowing")
