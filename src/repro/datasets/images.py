"""Synthetic image-classification datasets (CIFAR-10 / SVHN substitutes).

Each class is defined by a smooth random template (a mixture of spatial
Gaussian bumps per channel); samples are noisy, randomly shifted copies of
their class template.  The out-of-distribution set is generated from an
*independent* set of templates so that a well-calibrated classifier should be
uncertain on it — the property measured by the paper's Figure 2 and the OOD
column of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["ImageClassificationData", "make_image_classification_data", "make_ood_images",
           "class_templates"]


@dataclass
class ImageClassificationData:
    """Train/test arrays for a synthetic image classification problem."""

    train_images: np.ndarray  # (N, C, H, W)
    train_labels: np.ndarray  # (N,)
    test_images: np.ndarray
    test_labels: np.ndarray
    templates: np.ndarray  # (num_classes, C, H, W)

    @property
    def num_classes(self) -> int:
        return self.templates.shape[0]

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.train_images.shape[1:])


def class_templates(num_classes: int, image_size: int, channels: int,
                    rng: np.random.Generator, num_bumps: int = 3) -> np.ndarray:
    """Smooth per-class templates built from random spatial Gaussian bumps."""
    yy, xx = np.meshgrid(np.arange(image_size), np.arange(image_size), indexing="ij")
    templates = np.zeros((num_classes, channels, image_size, image_size))
    for k in range(num_classes):
        for c in range(channels):
            field = np.zeros((image_size, image_size))
            for _ in range(num_bumps):
                cy, cx = rng.uniform(0, image_size, size=2)
                sigma = rng.uniform(image_size / 6, image_size / 3)
                amp = rng.uniform(-1.5, 1.5)
                field += amp * np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma ** 2))
            templates[k, c] = field
    # normalize templates to zero mean / unit std per class for comparable difficulty
    templates -= templates.mean(axis=(1, 2, 3), keepdims=True)
    templates /= templates.std(axis=(1, 2, 3), keepdims=True) + 1e-8
    return templates


def _sample_from_templates(templates: np.ndarray, labels: np.ndarray, noise_scale: float,
                           shift: int, rng: np.random.Generator) -> np.ndarray:
    num_classes, channels, h, w = templates.shape
    images = templates[labels].copy()
    if shift > 0:
        shifts = rng.integers(-shift, shift + 1, size=(len(labels), 2))
        for i, (dy, dx) in enumerate(shifts):
            images[i] = np.roll(np.roll(images[i], dy, axis=1), dx, axis=2)
    images += rng.normal(0.0, noise_scale, size=images.shape)
    return images


def make_image_classification_data(num_classes: int = 10, image_size: int = 8,
                                   channels: int = 3, train_per_class: int = 40,
                                   test_per_class: int = 20, noise_scale: float = 0.6,
                                   shift: int = 1, seed: int = 0) -> ImageClassificationData:
    """Generate a balanced synthetic classification dataset."""
    rng = np.random.default_rng(seed)
    templates = class_templates(num_classes, image_size, channels, rng)

    def _make_split(per_class: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = np.repeat(np.arange(num_classes), per_class)
        rng.shuffle(labels)
        images = _sample_from_templates(templates, labels, noise_scale, shift, rng)
        return images, labels

    train_images, train_labels = _make_split(train_per_class)
    test_images, test_labels = _make_split(test_per_class)
    return ImageClassificationData(train_images, train_labels, test_images, test_labels,
                                   templates)


def make_ood_images(num_images: int, image_size: int = 8, channels: int = 3,
                    noise_scale: float = 0.6, seed: int = 1000,
                    num_classes: int = 10) -> np.ndarray:
    """Out-of-distribution images drawn from an independent template set (the SVHN stand-in)."""
    rng = np.random.default_rng(seed)
    templates = class_templates(num_classes, image_size, channels, rng, num_bumps=5)
    labels = rng.integers(0, num_classes, size=num_images)
    return _sample_from_templates(templates, labels, noise_scale, shift=1, rng=rng)
