"""Synthetic regression data (the Foong et al. 2019 setup from paper Section 2).

Inputs come from two clusters ``x1 ~ U[-1, -0.7]`` and ``x2 ~ U[0.5, 1]`` and
targets are ``y ~ N(cos(4x + 0.8), 0.1^2)``, leaving an "in-between" region
where a good Bayesian model should be uncertain.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["foong_regression", "regression_grid", "true_function"]


def true_function(x: np.ndarray) -> np.ndarray:
    """The noiseless target ``cos(4x + 0.8)``."""
    return np.cos(4.0 * x + 0.8)


def foong_regression(n_per_cluster: int = 40, noise_scale: float = 0.1,
                     seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Sample the two-cluster 1-D regression dataset; returns ``(x, y)`` of shape (N, 1)."""
    rng = np.random.default_rng(seed)
    x1 = rng.uniform(-1.0, -0.7, size=(n_per_cluster, 1))
    x2 = rng.uniform(0.5, 1.0, size=(n_per_cluster, 1))
    x = np.concatenate([x1, x2], axis=0)
    y = true_function(x) + rng.normal(0.0, noise_scale, size=x.shape)
    return x, y


def regression_grid(low: float = -1.5, high: float = 1.5, num_points: int = 100) -> np.ndarray:
    """Evenly spaced test inputs covering the data clusters and the gap between them."""
    return np.linspace(low, high, num_points).reshape(-1, 1)
