"""Task suites for continual learning (Split-MNIST / Split-CIFAR substitutes).

A base multi-class synthetic dataset is partitioned into a sequence of binary
(or few-class) tasks, exactly like the classic Split benchmarks: Split-MNIST
pairs digits (0/1, 2/3, ...) into five binary tasks; the CIFAR-style suite
produces six tasks from a 12-class image dataset.  Each task carries its own
output-head indices, matching the multi-head protocol of Zenke et al. (2017)
and the paper's Figure 4 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from .images import class_templates, make_image_classification_data

__all__ = ["ContinualTask", "make_split_tasks", "make_split_mnist_like", "make_split_cifar_like"]


@dataclass
class ContinualTask:
    """One task of a Split suite: binary/few-way classification over a class subset."""

    task_id: int
    classes: Tuple[int, ...]
    train_inputs: np.ndarray
    train_labels: np.ndarray  # relabelled to 0..len(classes)-1
    test_inputs: np.ndarray
    test_labels: np.ndarray

    @property
    def num_classes(self) -> int:
        return len(self.classes)


def _relabel(labels: np.ndarray, classes: Sequence[int]) -> np.ndarray:
    mapping = {c: i for i, c in enumerate(classes)}
    return np.array([mapping[int(l)] for l in labels])


def make_split_tasks(images: np.ndarray, labels: np.ndarray, test_images: np.ndarray,
                     test_labels: np.ndarray, classes_per_task: int = 2) -> List[ContinualTask]:
    """Partition a multi-class dataset into consecutive class-pair tasks."""
    all_classes = np.unique(labels)
    tasks = []
    for task_id, start in enumerate(range(0, len(all_classes), classes_per_task)):
        classes = tuple(int(c) for c in all_classes[start:start + classes_per_task])
        if len(classes) < classes_per_task:
            break
        train_sel = np.isin(labels, classes)
        test_sel = np.isin(test_labels, classes)
        tasks.append(ContinualTask(
            task_id=task_id,
            classes=classes,
            train_inputs=images[train_sel],
            train_labels=_relabel(labels[train_sel], classes),
            test_inputs=test_images[test_sel],
            test_labels=_relabel(test_labels[test_sel], classes),
        ))
    return tasks


def make_split_mnist_like(num_tasks: int = 5, image_size: int = 8, train_per_class: int = 30,
                          test_per_class: int = 20, noise_scale: float = 0.5,
                          seed: int = 0) -> List[ContinualTask]:
    """Five binary tasks over a 10-class grayscale digit-like dataset, flattened.

    Inputs are flattened to vectors because the paper's Split-MNIST network is
    a fully connected MLP (Appendix A.4).
    """
    data = make_image_classification_data(num_classes=2 * num_tasks, image_size=image_size,
                                          channels=1, train_per_class=train_per_class,
                                          test_per_class=test_per_class,
                                          noise_scale=noise_scale, seed=seed)
    flat_train = data.train_images.reshape(len(data.train_images), -1)
    flat_test = data.test_images.reshape(len(data.test_images), -1)
    return make_split_tasks(flat_train, data.train_labels, flat_test, data.test_labels)


def make_split_cifar_like(num_tasks: int = 6, image_size: int = 8, train_per_class: int = 30,
                          test_per_class: int = 20, noise_scale: float = 0.6,
                          seed: int = 1) -> List[ContinualTask]:
    """Six binary tasks over a 12-class colour image dataset (kept as NCHW images)."""
    data = make_image_classification_data(num_classes=2 * num_tasks, image_size=image_size,
                                          channels=3, train_per_class=train_per_class,
                                          test_per_class=test_per_class,
                                          noise_scale=noise_scale, seed=seed)
    return make_split_tasks(data.train_images, data.train_labels,
                            data.test_images, data.test_labels)
