"""``repro.datasets`` — synthetic data generators used by the experiments."""

from .continual import (ContinualTask, make_split_cifar_like, make_split_mnist_like,
                        make_split_tasks)
from .graphs import CitationGraphData, make_citation_graph
from .images import (ImageClassificationData, class_templates, make_image_classification_data,
                     make_ood_images)
from .regression import foong_regression, regression_grid, true_function

__all__ = [
    "foong_regression",
    "regression_grid",
    "true_function",
    "ImageClassificationData",
    "make_image_classification_data",
    "make_ood_images",
    "class_templates",
    "CitationGraphData",
    "make_citation_graph",
    "ContinualTask",
    "make_split_tasks",
    "make_split_mnist_like",
    "make_split_cifar_like",
]
