"""Synthetic citation-style graph dataset (the Cora substitute).

A stochastic block model provides the community structure (nodes of the same
class link much more often than nodes of different classes) and node features
are noisy class indicators plus random "word" dimensions — preserving the
semi-supervised transductive setting of the paper's GNN experiment: all nodes
and edges are visible, only a small subset of labels is used for training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..gnn.graph import Graph

__all__ = ["CitationGraphData", "make_citation_graph"]


@dataclass
class CitationGraphData:
    """A semi-supervised node-classification problem."""

    graph: Graph
    features: np.ndarray  # (N, F)
    labels: np.ndarray  # (N,)
    train_mask: np.ndarray  # boolean (N,)
    val_mask: np.ndarray
    test_mask: np.ndarray

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1

    @property
    def num_features(self) -> int:
        return self.features.shape[1]


def make_citation_graph(num_nodes: int = 200, num_classes: int = 4, feature_dim: int = 32,
                        p_in: float = 0.08, p_out: float = 0.005,
                        train_per_class: int = 5, val_per_class: int = 10,
                        feature_noise: float = 1.0, seed: int = 0) -> CitationGraphData:
    """Generate an SBM graph with label-correlated features and a Cora-style split."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=num_nodes)

    # stochastic block model adjacency
    same = labels[:, None] == labels[None, :]
    probs = np.where(same, p_in, p_out)
    upper = np.triu(rng.random((num_nodes, num_nodes)) < probs, k=1)
    adjacency = (upper | upper.T).astype(np.float64)
    graph = Graph(adjacency)

    # features: class-indicative dimensions + noise "bag of words"
    class_signal = np.zeros((num_nodes, num_classes))
    class_signal[np.arange(num_nodes), labels] = 1.0
    noise = rng.normal(0.0, feature_noise, size=(num_nodes, feature_dim))
    signal_strength = 1.5
    features = noise.copy()
    features[:, :num_classes] += signal_strength * class_signal

    # transductive split: small train set, larger val, rest test
    train_mask = np.zeros(num_nodes, dtype=bool)
    val_mask = np.zeros(num_nodes, dtype=bool)
    for k in range(num_classes):
        class_nodes = np.flatnonzero(labels == k)
        rng.shuffle(class_nodes)
        train_mask[class_nodes[:train_per_class]] = True
        val_mask[class_nodes[train_per_class:train_per_class + val_per_class]] = True
    test_mask = ~(train_mask | val_mask)
    return CitationGraphData(graph, features, labels, train_mask, val_mask, test_mask)
