"""Deterministic fault injection for the sweep engine's own test suite.

The robustness machinery in :mod:`repro.exec.pool` (subprocess isolation,
timeout escalation, retries, journal validation) is only trustworthy if it is
*exercised*: this module injects the three failure modes the pool must
contain, on demand, inside worker subprocesses.

Activation — an env spec (inherited by every worker) or a test-only hook::

    REPRO_FAULT="crash:p=0.3"                      # SIGKILL the worker (OOM-kill shape)
    REPRO_FAULT="hang:cell=seed=3,max_attempts=1"  # sleep forever; the pool's
                                                   # per-run timeout must kill it
    REPRO_FAULT="corrupt-artifact:cell=seed=1"     # tear the result handoff file
    REPRO_FAULT="crash:p=0.3;hang:cell=seed=3"     # several faults at once

    from repro.exec import faults
    faults.set_fault_specs("crash:p=1.0")          # process-local override
    faults.set_fault_specs(None)                   # back to the env var

Options per spec: ``p`` (injection probability, default 1), ``cell``
(substring match on the cell id, default every cell), ``max_attempts``
(inject only while ``attempt <= max_attempts``, so retries recover),
``seed`` (decision salt) and ``ignore_term`` (a hang that ignores SIGTERM,
forcing the pool's terminate->kill escalation).

Decisions are a pure function of ``(seed, kind, cell_id, attempt)`` — a
SHA-256 hash mapped to a uniform draw — never the process RNG.  Injection
therefore perturbs neither the experiment's sampling stream (a surviving
attempt computes exactly what a fault-free run computes, which is what lets
the test suite assert faulty-sweep == serial-fault-free-run equality) nor is
it flaky: the same spec against the same grid injects the same faults on
every machine.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

__all__ = ["FaultSpec", "parse_fault_specs", "active_specs", "set_fault_specs",
           "decide", "should_inject", "maybe_inject_start",
           "corrupt_artifact_active", "ENV_VAR"]

ENV_VAR = "REPRO_FAULT"

KINDS = ("crash", "hang", "corrupt-artifact")

#: how long an injected hang sleeps — far beyond any sane ``--timeout``
HANG_SECONDS = 3600.0

#: process-local override installed by :func:`set_fault_specs` (test hook);
#: ``None`` means "read the env var"
_OVERRIDE: Optional[Tuple["FaultSpec", ...]] = None


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault directive."""

    kind: str
    p: float = 1.0
    cell: Optional[str] = None
    max_attempts: Optional[int] = None
    seed: int = 0
    ignore_term: bool = False

    def applies(self, cell_id: str, attempt: int) -> bool:
        """Whether this spec injects for ``cell_id``'s ``attempt`` (1-based)."""
        if self.cell is not None and self.cell not in cell_id:
            return False
        if self.max_attempts is not None and attempt > self.max_attempts:
            return False
        return decide(self.seed, self.kind, cell_id, attempt) < self.p


def decide(seed: int, kind: str, cell_id: str, attempt: int) -> float:
    """The deterministic uniform draw in [0, 1) behind every injection decision."""
    token = f"{seed}:{kind}:{cell_id}:{attempt}".encode("utf-8")
    return int(hashlib.sha256(token).hexdigest()[:12], 16) / float(16 ** 12)


def parse_fault_specs(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a ``kind[:opt=v,...][;kind...]`` spec string (empty -> no faults)."""
    specs = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        kind, _, options_text = part.partition(":")
        kind = kind.strip()
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; choose from {KINDS}")
        options = {}
        for option in options_text.split(",") if options_text else ():
            name, sep, value = option.partition("=")
            name = name.strip()
            if not sep or not name:
                raise ValueError(f"fault option {option!r} is not of the form key=value")
            options[name] = value.strip()
        unknown = set(options) - {"p", "cell", "max_attempts", "seed", "ignore_term"}
        if unknown:
            raise ValueError(f"unknown fault options for {kind!r}: {sorted(unknown)}")
        specs.append(FaultSpec(
            kind=kind,
            p=float(options.get("p", 1.0)),
            cell=options.get("cell"),
            max_attempts=(int(options["max_attempts"])
                          if "max_attempts" in options else None),
            seed=int(options.get("seed", 0)),
            ignore_term=options.get("ignore_term", "0") in ("1", "true", "yes")))
    return tuple(specs)


def set_fault_specs(specs: Union[None, str, Sequence[FaultSpec]]) -> None:
    """Test-only hook: install a process-local fault spec override.

    Accepts a spec string (parsed like the env var), a sequence of
    :class:`FaultSpec`, or ``None`` to fall back to ``REPRO_FAULT``.  The
    override is process state: forked workers inherit it, spawned workers do
    not (they read the env var of their fresh interpreter).
    """
    global _OVERRIDE
    if specs is None:
        _OVERRIDE = None
    elif isinstance(specs, str):
        _OVERRIDE = parse_fault_specs(specs)
    else:
        _OVERRIDE = tuple(specs)


def active_specs() -> Tuple[FaultSpec, ...]:
    """The fault specs in force: the test hook if installed, else ``REPRO_FAULT``."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return parse_fault_specs(os.environ.get(ENV_VAR, ""))


def should_inject(kind: str, cell_id: str, attempt: int) -> Optional[FaultSpec]:
    """The first active spec of ``kind`` that injects for this cell/attempt."""
    for spec in active_specs():
        if spec.kind == kind and spec.applies(cell_id, attempt):
            return spec
    return None


def maybe_inject_start(cell_id: str, attempt: int) -> None:
    """Run-start injection point (called inside the worker subprocess).

    ``crash`` SIGKILLs the worker — indistinguishable from an OOM kill, the
    exact failure the pool classifies by negative exit code.  ``hang`` sleeps
    past any timeout (optionally ignoring SIGTERM to force the pool's kill
    escalation).  Both fire *before* the experiment runs, so a surviving
    attempt's RNG stream is untouched.
    """
    if should_inject("crash", cell_id, attempt) is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    spec = should_inject("hang", cell_id, attempt)
    if spec is not None:
        if spec.ignore_term:
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(HANG_SECONDS)


def corrupt_artifact_active(cell_id: str, attempt: int) -> bool:
    """Whether this attempt's result handoff file should be torn mid-write."""
    return should_inject("corrupt-artifact", cell_id, attempt) is not None
