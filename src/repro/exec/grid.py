"""``--set`` grid expansion for ``repro sweep``.

One ``--set key=spec`` argument contributes one *axis* to the sweep grid:

* ``--set lr=0.1,0.01`` — a comma-separated value list;
* ``--set seed=0..4`` — an inclusive integer range (``0,1,2,3,4``;
  descending ranges like ``4..0`` count down);
* ``--set suite=mnist`` — a single value (a one-point axis), so a sweep
  over a single-value grid degenerates to exactly one ``repro run``.

The grid is the cartesian product of all axes, enumerated with the *last*
``--set`` flag varying fastest (nested loops in the order given).  Values
stay strings here — each worker coerces them against the experiment's config
field types via ``BaseExperimentConfig.with_overrides``, exactly as
``repro run --set`` does, so sweep cells and single runs parse identically.

Every cell carries a stable identity: ``cell_id`` is the human-readable
``key=value`` join and ``key`` is a content hash of ``(experiment id, fast,
overrides)`` used for journal filenames — relaunching the same grid maps
each cell to the same journal entry, which is what makes ``--resume`` work.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["GridCell", "expand_grid", "parse_axis_values", "parse_grid_axes",
           "parse_shard", "shard_cells", "cell_key"]

_RANGE_RE = re.compile(r"^(-?\d+)\.\.(-?\d+)$")


def parse_axis_values(raw: str) -> Tuple[str, ...]:
    """Expand one ``--set`` value spec into its axis values (as strings)."""
    raw = raw.strip()
    match = _RANGE_RE.match(raw)
    if match:
        start, stop = int(match.group(1)), int(match.group(2))
        step = 1 if stop >= start else -1
        return tuple(str(v) for v in range(start, stop + step, step))
    values = tuple(part.strip() for part in raw.split(","))
    if any(not part for part in values):
        raise ValueError(f"empty value in --set list {raw!r}")
    return values


def parse_grid_axes(set_args: Sequence[str]) -> Dict[str, Tuple[str, ...]]:
    """Parse repeated ``--set key=spec`` arguments into ordered grid axes.

    Repeating a key replaces its earlier axis (last wins, matching
    ``parse_overrides``); the replacement keeps the key's original position
    so the enumeration order stays predictable.
    """
    axes: Dict[str, Tuple[str, ...]] = {}
    for pair in set_args:
        key, sep, value = pair.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ValueError(f"--set {pair!r} is not of the form key=value[,value...]")
        axes[key] = parse_axis_values(value)
    return axes


@dataclass(frozen=True)
class GridCell:
    """One point of the expanded sweep grid."""

    index: int
    experiment_id: str
    overrides: Mapping[str, str]
    fast: bool = False
    #: human-readable identity, e.g. ``"lr=0.1,seed=3"`` (empty grid: ``"<defaults>"``)
    cell_id: str = ""
    #: content hash of (experiment_id, fast, overrides) — the journal filename stem
    key: str = ""


def cell_key(experiment_id: str, overrides: Mapping[str, str], fast: bool) -> str:
    """Stable content hash identifying one cell across sweep relaunches."""
    canonical = json.dumps(
        {"experiment_id": experiment_id, "fast": bool(fast),
         "overrides": {k: str(v) for k, v in sorted(overrides.items())}},
        sort_keys=True)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:12]


def expand_grid(experiment_id: str, set_args: Sequence[str], *, fast: bool = False,
                base_overrides: Optional[Mapping[str, str]] = None) -> List[GridCell]:
    """Expand ``--set`` arguments into the full list of grid cells.

    ``base_overrides`` (e.g. a ``--seed`` flag) apply to every cell but are
    shadowed by a grid axis of the same name.  With no axes at all the grid
    is the single default-config cell.
    """
    axes = parse_grid_axes(set_args)
    base = {k: str(v) for k, v in (base_overrides or {}).items() if k not in axes}
    keys = list(axes)
    cells: List[GridCell] = []
    for index, values in enumerate(itertools.product(*(axes[k] for k in keys))):
        overrides = dict(base)
        overrides.update(zip(keys, values))
        cell_id = ",".join(f"{k}={v}" for k, v in zip(keys, values)) or "<defaults>"
        cells.append(GridCell(index=index, experiment_id=experiment_id,
                              overrides=overrides, fast=fast, cell_id=cell_id,
                              key=cell_key(experiment_id, overrides, fast)))
    return cells


def parse_shard(spec: Optional[str], num_cells: int) -> Tuple[int, int]:
    """Parse a ``--shard i/N`` spec (1-based, as CI matrices spell it).

    Returns ``(index, count)`` with ``1 <= index <= count``; shard ``i/N``
    owns the cells whose grid index is congruent to ``i - 1`` modulo ``N``,
    so the N shards partition any grid without coordination.
    """
    if spec is None:
        return (1, 1)
    match = re.match(r"^(\d+)/(\d+)$", spec.strip())
    if not match:
        raise ValueError(f"--shard {spec!r} is not of the form i/N (e.g. 1/4)")
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or not 1 <= index <= count:
        raise ValueError(f"--shard {spec!r}: need 1 <= i <= N")
    return (index, count)


def shard_cells(cells: Sequence[GridCell], spec: Optional[str]) -> List[GridCell]:
    """The subset of ``cells`` owned by shard ``spec`` (all cells when None)."""
    index, count = parse_shard(spec, len(cells))
    return [cell for cell in cells if cell.index % count == index - 1]
