"""Structured end-of-sweep reporting and the ``repro results`` artifact index.

The report is both human-readable (per-cell ``PASS``/``RETRIED``/``FAIL``/
``TIMEOUT``/``SKIP`` lines plus a summary) and machine-readable
(``report.json`` written atomically next to the journal, carrying per-cell
attempts, retry budget usage, wall clocks and error strings).  Exit-code
contract: a sweep exits 1 when any cell ends in a terminal failure.

``repro results <sweep-dir>`` reads the journal back into a queryable table:
one row per journaled cell (its swept overrides plus every numeric metric)
and min/p50/mean/p95/p99/max aggregates per metric across the grid — the
percentiles exist chiefly for latency-style metrics (``BENCH_serve.json``
traces, wall clocks), where tails matter more than means.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .journal import SweepJournal, _atomic_write_text, load_manifest
from .pool import FAIL, PASS, SKIPPED, TIMEOUT, CellOutcome

__all__ = ["build_report", "write_report", "render_report", "exit_code",
           "index_results", "render_results"]

#: display labels: a pass that needed retries surfaces as RETRIED
_LABELS = {PASS: "PASS", FAIL: "FAIL", TIMEOUT: "TIMEOUT", SKIPPED: "SKIP"}


def _label(outcome: CellOutcome) -> str:
    if outcome.status == PASS and outcome.retried:
        return "RETRIED"
    return _LABELS[outcome.status]


def build_report(experiment_id: str, outcomes: Sequence[CellOutcome], *,
                 retries: int, workers: int, wall_clock_seconds: float) -> dict:
    """The machine-readable sweep report (one entry per cell, plus counts)."""
    cells = []
    for outcome in outcomes:
        cells.append({
            "cell_id": outcome.cell.cell_id,
            "key": outcome.cell.key,
            "overrides": dict(outcome.cell.overrides),
            "status": outcome.status,
            "label": _label(outcome),
            "attempts": outcome.attempts,
            "retries_used": max(0, outcome.attempts - 1),
            "retry_budget": retries,
            "wall_clock_seconds": round(outcome.total_seconds, 6),
            "error": outcome.error,
        })
    counts: Dict[str, int] = {}
    for outcome in outcomes:
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
    return {
        "experiment_id": experiment_id,
        "workers": workers,
        "retries": retries,
        "wall_clock_seconds": round(wall_clock_seconds, 6),
        "counts": counts,
        "retried": sum(1 for o in outcomes if o.status == PASS and o.retried),
        "cells": cells,
    }


def write_report(root, report: dict) -> Path:
    path = Path(root) / "report.json"
    _atomic_write_text(path, json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def render_report(report: dict, stream) -> None:
    """Print the per-cell table and summary line for one sweep execution."""
    cells = report["cells"]
    width = max((len(c["cell_id"]) for c in cells), default=8)
    for cell in cells:
        line = f"  {cell['label']:<8s} {cell['cell_id']:<{width}s}"
        if cell["status"] == SKIPPED:
            line += "  (journaled)"
        else:
            line += (f"  (attempts={cell['attempts']}/{cell['retry_budget'] + 1}, "
                     f"{cell['wall_clock_seconds']:.2f}s)")
        if cell["error"]:
            line += f"  {cell['error']}"
        print(line, file=stream)
    counts = report["counts"]
    parts = [f"{counts.get(PASS, 0)} passed"]
    if report.get("retried"):
        parts[-1] += f" ({report['retried']} retried)"
    if counts.get(FAIL):
        parts.append(f"{counts[FAIL]} failed")
    if counts.get(TIMEOUT):
        parts.append(f"{counts[TIMEOUT]} timed out")
    if counts.get(SKIPPED):
        parts.append(f"{counts[SKIPPED]} skipped")
    print(f"sweep {report['experiment_id']}: {', '.join(parts)} — "
          f"{len(cells)} cells in {report['wall_clock_seconds']:.1f}s "
          f"(workers={report['workers']})", file=stream)


def exit_code(outcomes: Sequence[CellOutcome]) -> int:
    """0 when every cell passed or was skipped, 1 on any terminal failure."""
    return 0 if all(outcome.ok for outcome in outcomes) else 1


# --------------------------------------------------------------------------
# ``repro results`` — the queryable index over a sweep directory.
# --------------------------------------------------------------------------
def _percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of pre-sorted values (numpy-default)."""
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * (q / 100.0)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def index_results(sweep_dir) -> dict:
    """Summarize a sweep directory's journal into a metrics table.

    Returns ``{"experiment_id", "rows", "metrics", "aggregates"}`` where each
    row carries the cell's identity, its swept overrides and its numeric
    metrics, and ``aggregates`` maps every metric to
    min/p50/mean/p95/p99/max across the journaled grid.  Cells the manifest
    lists but the journal lacks appear with ``"status": "missing"`` so
    partial sweeps are visible.
    """
    root = Path(sweep_dir)
    manifest = load_manifest(root)
    journal = SweepJournal(root)
    valid, corrupt = journal.scan()

    manifest_cells = {c["key"]: c for c in (manifest or {}).get("cells", [])}
    keys = list(manifest_cells) or sorted(valid)
    rows: List[dict] = []
    metric_keys: List[str] = []
    for key in keys:
        listed = manifest_cells.get(key, {})
        row = {"key": key,
               "cell_id": listed.get("cell_id", key),
               "overrides": dict(listed.get("overrides", {}))}
        result = valid.get(key)
        if result is None:
            row["status"] = "missing"
            row["metrics"] = {}
        else:
            row["status"] = "done"
            if not listed:
                row["overrides"] = {k: v for k, v in result.config.items()}
            row["metrics"] = {k: v for k, v in result.metrics.items()
                              if isinstance(v, (int, float)) and not isinstance(v, bool)}
            for name in row["metrics"]:
                if name not in metric_keys:
                    metric_keys.append(name)
        rows.append(row)

    aggregates: Dict[str, dict] = {}
    for name in metric_keys:
        values = [row["metrics"][name] for row in rows if name in row["metrics"]]
        if values:
            ordered = sorted(values)
            aggregates[name] = {"min": min(values), "max": max(values),
                                "mean": sum(values) / len(values),
                                "p50": _percentile(ordered, 50.0),
                                "p95": _percentile(ordered, 95.0),
                                "p99": _percentile(ordered, 99.0),
                                "n": len(values)}
    experiment_id = (manifest or {}).get("experiment_id")
    if experiment_id is None and valid:
        experiment_id = next(iter(valid.values())).experiment_id
    return {"experiment_id": experiment_id, "rows": rows, "metrics": metric_keys,
            "aggregates": aggregates, "corrupt": [str(p) for p in corrupt]}


def render_results(index: dict, stream, metrics: Optional[Sequence[str]] = None) -> None:
    """Print the results table (optionally restricted to ``metrics`` columns)."""
    selected = list(metrics) if metrics else index["metrics"]
    width = max([len(row["cell_id"]) for row in index["rows"]] + [4])
    header = f"{'cell':<{width}s} {'status':<8s}" + "".join(
        f" {name:>14s}" for name in selected)
    print(header, file=stream)
    for row in index["rows"]:
        line = f"{row['cell_id']:<{width}s} {row['status']:<8s}"
        for name in selected:
            value = row["metrics"].get(name)
            line += f" {value:>14.6g}" if value is not None else f" {'-':>14s}"
        print(line, file=stream)
    for name in selected:
        agg = index["aggregates"].get(name)
        if agg:
            print(f"{name}: min {agg['min']:.6g}  p50 {agg['p50']:.6g}  "
                  f"mean {agg['mean']:.6g}  p95 {agg['p95']:.6g}  "
                  f"p99 {agg['p99']:.6g}  max {agg['max']:.6g}  (n={agg['n']})",
                  file=stream)
    if index["corrupt"]:
        print(f"results: {len(index['corrupt'])} corrupt journal entries ignored",
              file=stream)
