"""The on-disk sweep journal: atomic per-cell results, manifest, resume scan.

A sweep directory looks like::

    <sweep-dir>/
      manifest.json          # experiment id, grid axes, every cell's identity
      journal/<key>.json     # one ExperimentResult artifact per completed cell
      report.json            # the last execution's structured per-cell report
      work/                  # transient worker handoff files (cleaned up)

Journal entries are written with :meth:`ExperimentResult.write` — tmp file +
``os.replace`` — so a sweep killed at any instant (including SIGKILL mid
``write``) leaves either a complete entry or none.  ``--resume`` is then just
a scan: cells whose key has a loadable journal entry are skipped; entries
that fail to load (torn by something outside the atomic path, e.g. disk
faults or the fault-injection harness) are deleted and their cells re-run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..experiments.api.base import ExperimentResult, ResultCorruptedError

__all__ = ["SweepJournal", "write_manifest", "load_manifest", "MANIFEST_VERSION"]

MANIFEST_VERSION = 1


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.parent / f"{path.name}.{os.getpid()}.tmp"
    tmp.write_text(text)
    os.replace(tmp, path)


class SweepJournal:
    """Atomic per-cell result store under ``<root>/journal``."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.dir = self.root / "journal"

    def path_for(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    # ---------------------------------------------------------------- writing
    def record(self, key: str, result: ExperimentResult) -> Path:
        """Atomically journal ``result`` as the completed run of cell ``key``."""
        return result.write(self.path_for(key))

    # ---------------------------------------------------------------- reading
    def load(self, key: str) -> ExperimentResult:
        return ExperimentResult.load(self.path_for(key))

    def scan(self) -> Tuple[Dict[str, ExperimentResult], List[Path]]:
        """All journal entries, split into loadable results and corrupt files.

        Returns ``(valid, corrupt)``: ``valid`` maps cell key to its journaled
        :class:`ExperimentResult`; ``corrupt`` lists entry files that exist
        but cannot be loaded (torn or schema-invalid) — resume deletes those
        and re-runs their cells rather than trusting half a result.
        """
        valid: Dict[str, ExperimentResult] = {}
        corrupt: List[Path] = []
        if not self.dir.is_dir():
            return valid, corrupt
        for path in sorted(self.dir.glob("*.json")):
            try:
                valid[path.stem] = ExperimentResult.load(path)
            except (ResultCorruptedError, ValueError):
                corrupt.append(path)
        return valid, corrupt

    def completed_keys(self) -> List[str]:
        return sorted(self.scan()[0])


# ------------------------------------------------------------------ manifest
def write_manifest(root, manifest: dict) -> Path:
    """Atomically write ``<root>/manifest.json``."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    path = root / "manifest.json"
    payload = {"manifest_version": MANIFEST_VERSION, **manifest}
    _atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_manifest(root) -> Optional[dict]:
    """Load ``<root>/manifest.json`` (``None`` when absent)."""
    path = Path(root) / "manifest.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())
