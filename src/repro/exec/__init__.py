"""``repro.exec`` — the fault-tolerant sweep & sharded execution engine.

Cashes in the experiment registry (``repro.experiments.api``): once a
scenario is registered, ``repro sweep <id> --set lr=0.1,0.01 --set
seed=0..4`` expands the ``--set`` lists/ranges into a config grid and runs
every cell through a crash-isolated multiprocess worker pool.  The pieces:

* :mod:`~repro.exec.grid` — ``--set`` expansion (lists, ``a..b`` ranges,
  cartesian products), stable cell identities, ``--shard i/N`` splitting;
* :mod:`~repro.exec.pool` — the subprocess worker pool: segfaults/OOM
  kills/exceptions contained per cell, per-run timeout with terminate->kill
  escalation, exponential-backoff retries with deterministic jitter, and a
  trusted in-process mode (``workers=0``);
* :mod:`~repro.exec.journal` — atomic on-disk journal of completed cells
  (tmp file + ``os.replace``) enabling ``--resume`` after any kill;
* :mod:`~repro.exec.faults` — the deterministic fault-injection harness
  (``REPRO_FAULT=crash:p=0.3`` / ``hang`` / ``corrupt-artifact``) proving
  the machinery above actually works;
* :mod:`~repro.exec.report` — structured PASS/FAIL/TIMEOUT/RETRIED
  reporting, ``report.json``, and the ``repro results`` metric index.

``repro run-all`` is rebuilt on the same engine, so it inherits workers,
timeouts, retries and resume for free.
"""

from .grid import GridCell, cell_key, expand_grid, parse_axis_values, shard_cells
from .journal import SweepJournal, load_manifest, write_manifest
from .pool import FAIL, PASS, SKIPPED, TIMEOUT, CellOutcome, execute
from .report import (build_report, exit_code, index_results, render_report,
                     render_results, write_report)

__all__ = [
    "GridCell",
    "SweepJournal",
    "CellOutcome",
    "PASS", "FAIL", "TIMEOUT", "SKIPPED",
    "build_report",
    "cell_key",
    "execute",
    "exit_code",
    "expand_grid",
    "index_results",
    "load_manifest",
    "parse_axis_values",
    "render_report",
    "render_results",
    "shard_cells",
    "write_manifest",
    "write_report",
]
