"""Crash-isolated worker pool: the execution core of ``repro sweep``/``run-all``.

Each grid cell runs in its **own subprocess** (``multiprocessing`` fork on
POSIX, spawn as the portable/clean-slate alternative), so the one thing a
cell cannot do is take the sweep down with it: a segfault or OOM kill shows
up as a negative exit code, an unhandled exception as an error payload file,
a hang as a blown per-run ``timeout`` (graceful SIGTERM, then SIGKILL after
``kill_grace``) — all of them are *contained*, classified, and retried with
exponential backoff + deterministic jitter up to the ``retries`` budget.

Results are handed off through files, not pipes: a worker atomically writes
its :class:`ExperimentResult` JSON (or an error payload) under
``<root>/work/`` and the parent validates the artifact by loading it before
journaling — a torn handoff is detected (:class:`ResultCorruptedError`) and
treated as one more transient failure.  Because every worker seeds from its
own cell config (``config.seed_all()`` inside the runner, enforced by lint
rule R004), a parallel sweep journals byte-identical metrics to a serial one.

``workers=0`` selects the trusted in-process executor: cells run serially in
the parent (no isolation, no timeout) with the same retry/journal/reporting
machinery — this is the path ``repro run-all`` uses by default and the
fault-free serial reference the equivalence tests compare against.
"""

from __future__ import annotations

import importlib
import json
import multiprocessing
import os
import sys
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..experiments.api.base import ExperimentResult, ResultCorruptedError
from . import faults
from .grid import GridCell
from .journal import SweepJournal

__all__ = ["CellOutcome", "execute", "PASS", "FAIL", "TIMEOUT", "SKIPPED",
           "default_start_method"]

PASS = "pass"
FAIL = "fail"
TIMEOUT = "timeout"
SKIPPED = "skipped"

_POLL_SECONDS = 0.02


def default_start_method() -> str:
    """``fork`` where available (cheap workers sharing warm imports), else ``spawn``."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


@dataclass
class CellOutcome:
    """Terminal state of one grid cell after skips, attempts and retries."""

    cell: GridCell
    status: str  # PASS / FAIL / TIMEOUT / SKIPPED
    attempts: int
    total_seconds: float = 0.0
    error: Optional[str] = None
    result: Optional[ExperimentResult] = field(default=None, repr=False)

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    @property
    def ok(self) -> bool:
        return self.status in (PASS, SKIPPED)


# --------------------------------------------------------------------------
# Worker subprocess entry point.
# --------------------------------------------------------------------------
def _atomic_write_text(path: str, text: str) -> None:
    tmp = f"{path}.{os.getpid()}.tmp"
    Path(tmp).write_text(text)
    os.replace(tmp, path)


def _child_main(payload: Mapping) -> None:
    """Run one cell attempt inside the worker subprocess.

    Writes either the result artifact to ``result_path`` (atomically, unless
    the ``corrupt-artifact`` fault tears it) or an error payload to
    ``error_path`` and exits 1.  Crashes and hangs injected by
    :mod:`repro.exec.faults` fire before the experiment runs.
    """
    log_path = payload.get("log_path")
    if log_path:
        fd = os.open(log_path, os.O_CREAT | os.O_WRONLY | os.O_TRUNC, 0o644)
        os.dup2(fd, 1)
        os.dup2(fd, 2)
        os.close(fd)
    try:
        for name in payload["extra_imports"]:
            importlib.import_module(name)
        faults.maybe_inject_start(payload["cell_id"], payload["attempt"])
        from ..experiments.api.registry import find_experiment

        spec = find_experiment(payload["experiment_id"])
        result = spec.run(fast=payload["fast"], overrides=dict(payload["overrides"]))
        text = result.to_json() + "\n"
        if faults.corrupt_artifact_active(payload["cell_id"], payload["attempt"]):
            # simulate a torn non-atomic write: half the document, no replace
            Path(payload["result_path"]).write_text(text[: max(1, len(text) // 2)])
        else:
            _atomic_write_text(payload["result_path"], text)
    except Exception as exc:
        _atomic_write_text(payload["error_path"], json.dumps({
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }))
        sys.exit(1)


# --------------------------------------------------------------------------
# Parent-side scheduling.
# --------------------------------------------------------------------------
@dataclass
class _Attempt:
    cell: GridCell
    attempt: int  # 1-based
    ready_at: float = 0.0
    elapsed_before: float = 0.0


@dataclass
class _Running:
    cell: GridCell
    attempt: int
    started: float
    deadline: Optional[float]
    result_path: str
    error_path: str
    log_path: str
    elapsed_before: float


def _backoff_delay(backoff: float, jitter: float, cell_id: str, attempt: int) -> float:
    """Exponential backoff with deterministic jitter (reproducible schedules)."""
    return backoff * (2.0 ** (attempt - 1)) * (1.0 + jitter * faults.decide(
        0, "backoff", cell_id, attempt))


def _emit(on_event, kind: str, cell: GridCell, **info) -> None:
    if on_event is not None:
        on_event(kind, cell, **info)


def _classify_exit(info: _Running) -> tuple:
    """Map a finished worker to ``(result_or_None, error_or_None)``."""
    error_path = Path(info.error_path)
    if error_path.exists():
        try:
            payload = json.loads(error_path.read_text())
            return None, f"{payload['type']}: {payload['message']}"
        except (ValueError, KeyError):
            return None, "worker failed (unreadable error payload)"
    try:
        return ExperimentResult.load(info.result_path), None
    except FileNotFoundError:
        return None, "worker exited without a result artifact"
    except (ResultCorruptedError, ValueError) as exc:
        return None, str(exc)


def _terminate_then_kill(proc, kill_grace: float) -> None:
    proc.terminate()
    proc.join(kill_grace)
    if proc.is_alive():
        proc.kill()
        proc.join(10.0)


def execute(cells: Sequence[GridCell], *, journal: Optional[SweepJournal] = None,
            workers: int = 1, timeout: Optional[float] = None, retries: int = 0,
            backoff: float = 0.5, jitter: float = 0.25, resume: bool = False,
            start_method: Optional[str] = None, kill_grace: float = 1.0,
            extra_imports: Sequence[str] = (),
            resolve: Optional[Callable[[str], object]] = None,
            on_event: Optional[Callable] = None) -> List[CellOutcome]:
    """Run every cell to a terminal outcome; never raises on cell failure.

    ``resume`` skips cells whose key already has a loadable journal entry
    (corrupt entries are deleted and re-run).  ``workers >= 1`` is the
    subprocess pool; ``workers=0`` runs in-process (``timeout`` unsupported
    there — validate at the CLI).  ``resolve`` overrides experiment lookup
    for the in-process executor only; subprocess workers always resolve
    through the registry (plus ``extra_imports``).
    """
    if workers == 0 and timeout is not None:
        raise ValueError("per-run timeouts need subprocess isolation: use workers >= 1")
    outcomes: Dict[str, CellOutcome] = {}
    pending: List[_Attempt] = []

    skipped: Dict[str, ExperimentResult] = {}
    if journal is not None and resume:
        valid, corrupt = journal.scan()
        for path in corrupt:
            path.unlink()
        skipped = valid
    for cell in cells:
        if cell.key in skipped:
            outcome = CellOutcome(cell=cell, status=SKIPPED, attempts=0,
                                  result=skipped[cell.key])
            outcomes[cell.key] = outcome
            _emit(on_event, "skip", cell, outcome=outcome)
        else:
            pending.append(_Attempt(cell=cell, attempt=1))

    def finish(cell: GridCell, attempt: int, elapsed: float, *,
               result: Optional[ExperimentResult] = None,
               error: Optional[str] = None, timed_out: bool = False) -> None:
        """Terminal-or-retry bookkeeping shared by both executors."""
        if result is not None:
            if journal is not None:
                journal.record(cell.key, result)
            outcome = CellOutcome(cell=cell, status=PASS, attempts=attempt,
                                  total_seconds=elapsed, result=result)
            outcomes[cell.key] = outcome
            _emit(on_event, "pass", cell, outcome=outcome)
            return
        will_retry = attempt <= retries
        delay = _backoff_delay(backoff, jitter, cell.cell_id, attempt) if will_retry else 0.0
        _emit(on_event, "attempt-failed", cell, attempt=attempt, error=error,
              will_retry=will_retry, delay=delay, timed_out=timed_out)
        if will_retry:
            pending.append(_Attempt(cell=cell, attempt=attempt + 1,
                                    ready_at=time.monotonic() + delay,
                                    elapsed_before=elapsed))
        else:
            outcome = CellOutcome(cell=cell, status=TIMEOUT if timed_out else FAIL,
                                  attempts=attempt, total_seconds=elapsed, error=error)
            outcomes[cell.key] = outcome
            _emit(on_event, "fail", cell, outcome=outcome)

    if workers == 0:
        _execute_in_process(pending, finish, resolve=resolve, retries=retries,
                            backoff=backoff, jitter=jitter)
    else:
        _execute_subprocess(pending, finish, journal=journal, workers=workers,
                            timeout=timeout, start_method=start_method,
                            kill_grace=kill_grace, extra_imports=extra_imports)
    return [outcomes[cell.key] for cell in cells]


def _execute_in_process(pending: List[_Attempt], finish, *, resolve, retries: int,
                        backoff: float, jitter: float) -> None:
    """Serial trusted executor: same retry/journal semantics, no isolation."""
    if resolve is None:
        from ..experiments.api.registry import find_experiment as resolve
    while pending:
        att = pending.pop(0)
        wait = att.ready_at - time.monotonic()
        if wait > 0:
            time.sleep(wait)
        started = time.perf_counter()
        try:
            spec = resolve(att.cell.experiment_id)
            result = spec.run(fast=att.cell.fast, overrides=dict(att.cell.overrides))
        except Exception as exc:
            elapsed = att.elapsed_before + (time.perf_counter() - started)
            finish(att.cell, att.attempt, elapsed,
                   error=f"{type(exc).__name__}: {exc}")
        else:
            elapsed = att.elapsed_before + (time.perf_counter() - started)
            finish(att.cell, att.attempt, elapsed, result=result)


def _execute_subprocess(pending: List[_Attempt], finish, *, journal, workers: int,
                        timeout: Optional[float], start_method: Optional[str],
                        kill_grace: float, extra_imports: Sequence[str]) -> None:
    """The crash-isolated pool: launch, poll, classify, escalate, retry."""
    ctx = multiprocessing.get_context(start_method or default_start_method())
    if journal is not None:
        work_root = journal.root / "work"
    else:
        work_root = Path(tempfile.mkdtemp(prefix="repro-exec-")) / "work"
    if pending:
        work_root.mkdir(parents=True, exist_ok=True)
    parent_pid = os.getpid()
    running: Dict[object, _Running] = {}

    def launch(att: _Attempt) -> None:
        stem = f"{att.cell.key}.p{parent_pid}.a{att.attempt}"
        info = _Running(
            cell=att.cell, attempt=att.attempt, started=time.monotonic(),
            deadline=(time.monotonic() + timeout) if timeout is not None else None,
            result_path=str(work_root / f"{stem}.json"),
            error_path=str(work_root / f"{stem}.error.json"),
            log_path=str(work_root / f"{stem}.log"),
            elapsed_before=att.elapsed_before)
        payload = {
            "experiment_id": att.cell.experiment_id,
            "overrides": dict(att.cell.overrides),
            "fast": att.cell.fast,
            "cell_id": att.cell.cell_id,
            "attempt": att.attempt,
            "extra_imports": list(extra_imports),
            "result_path": info.result_path,
            "error_path": info.error_path,
            "log_path": info.log_path,
        }
        proc = ctx.Process(target=_child_main, args=(payload,), daemon=True)
        proc.start()
        running[proc] = info

    def reap(proc, info: _Running, *, timed_out: bool) -> None:
        elapsed = info.elapsed_before + (time.monotonic() - info.started)
        if timed_out:
            error = (f"timed out after {timeout:g}s "
                     f"(terminated, killed after {kill_grace:g}s grace)")
            result = None
        else:
            exitcode = proc.exitcode
            if exitcode == 0:
                result, error = _classify_exit(info)
            elif exitcode is not None and exitcode < 0:
                result, error = None, f"worker killed by signal {-exitcode} (crash/OOM)"
            else:
                result, error = _classify_exit(info)
                if result is not None:  # nonzero exit yet a valid artifact: distrust it
                    result, error = None, f"worker exited with code {exitcode}"
                elif error is None:
                    error = f"worker exited with code {exitcode}"
        for path in (info.result_path, info.error_path):
            try:
                os.unlink(path)
            except FileNotFoundError:
                # expected: each attempt writes exactly one of the two files
                continue
        if result is not None:
            try:
                os.unlink(info.log_path)  # keep logs only for failed attempts
            except FileNotFoundError:
                pass  # absent log: the worker wrote nothing
        finish(info.cell, info.attempt, elapsed, result=result, error=error,
               timed_out=timed_out)

    while pending or running:
        now = time.monotonic()
        while len(running) < workers:
            index = next((i for i, att in enumerate(pending) if att.ready_at <= now),
                         None)
            if index is None:
                break
            launch(pending.pop(index))
        progressed = False
        for proc in list(running):
            info = running[proc]
            if proc.is_alive():
                if info.deadline is not None and time.monotonic() >= info.deadline:
                    _terminate_then_kill(proc, kill_grace)
                    del running[proc]
                    reap(proc, info, timed_out=True)
                    proc.close()
                    progressed = True
                continue
            proc.join()
            del running[proc]
            reap(proc, info, timed_out=False)
            proc.close()
            progressed = True
        if not progressed and (running or pending):
            time.sleep(_POLL_SECONDS)
    try:
        work_root.rmdir()  # only succeeds when no logs were left behind
    except OSError:
        pass  # non-empty (failure logs kept for debugging) or never created
