"""Out-of-distribution detection metrics.

The paper measures OOD detection with the area under the ROC curve of the
maximum predicted probability (Table 1, "OOD" column) and visualizes the
empirical CDF of the predictive entropy on test vs. OOD data (Figure 2b).
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..nn.tensor import Tensor
from .classification import as_probs

__all__ = ["predictive_entropy", "auroc", "ood_auroc_max_prob", "entropy_cdf"]


def predictive_entropy(probs: Union[np.ndarray, Tensor], from_logits: bool = False) -> np.ndarray:
    """Entropy (nats) of each predictive distribution."""
    p = as_probs(probs, from_logits)
    return -(p * np.log(np.clip(p, 1e-12, None))).sum(axis=-1)


def auroc(scores_positive: np.ndarray, scores_negative: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    ``scores_positive`` should tend to be larger than ``scores_negative`` for
    a good detector.
    """
    pos = np.asarray(scores_positive, dtype=np.float64)
    neg = np.asarray(scores_negative, dtype=np.float64)
    combined = np.concatenate([pos, neg])
    ranks = np.empty_like(combined)
    order = np.argsort(combined, kind="mergesort")
    sorted_vals = combined[order]
    # average ranks for ties
    ranks_sorted = np.arange(1, len(combined) + 1, dtype=np.float64)
    unique_vals, inverse, counts = np.unique(sorted_vals, return_inverse=True, return_counts=True)
    cum = np.cumsum(counts)
    start = cum - counts
    avg_rank = (start + cum + 1) / 2.0
    ranks[order] = avg_rank[inverse]
    rank_sum_pos = ranks[: len(pos)].sum()
    u = rank_sum_pos - len(pos) * (len(pos) + 1) / 2.0
    return float(u / (len(pos) * len(neg)))


def ood_auroc_max_prob(test_probs: Union[np.ndarray, Tensor],
                       ood_probs: Union[np.ndarray, Tensor],
                       from_logits: bool = False) -> float:
    """AUROC of separating test from OOD data using the max predicted probability.

    In-distribution samples should receive *higher* maximum probability, so
    they play the role of the positive class.
    """
    test_conf = as_probs(test_probs, from_logits).max(axis=-1)
    ood_conf = as_probs(ood_probs, from_logits).max(axis=-1)
    return auroc(test_conf, ood_conf)


def entropy_cdf(probs: Union[np.ndarray, Tensor], grid: np.ndarray,
                from_logits: bool = False) -> np.ndarray:
    """Empirical CDF of the predictive entropy evaluated on ``grid`` (Figure 2b)."""
    entropies = predictive_entropy(probs, from_logits)
    return np.array([(entropies <= g).mean() for g in np.asarray(grid)])
