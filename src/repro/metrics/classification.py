"""Classification metrics: accuracy, negative log likelihood, Brier score."""

from __future__ import annotations

from typing import Union

import numpy as np

from ..nn.tensor import Tensor

__all__ = ["accuracy", "nll", "brier_score", "as_probs"]


def as_probs(values: Union[np.ndarray, Tensor], from_logits: bool = False) -> np.ndarray:
    """Convert logits or probabilities to a normalized probability array."""
    arr = values.data if isinstance(values, Tensor) else np.asarray(values, dtype=np.float64)
    if from_logits:
        arr = arr - arr.max(axis=-1, keepdims=True)
        arr = np.exp(arr)
    arr = np.clip(arr, 1e-12, None)
    return arr / arr.sum(axis=-1, keepdims=True)


def accuracy(probs: Union[np.ndarray, Tensor], labels: np.ndarray,
             from_logits: bool = False) -> float:
    """Fraction of correct argmax predictions."""
    p = as_probs(probs, from_logits)
    labels = np.asarray(labels.data if isinstance(labels, Tensor) else labels, dtype=np.int64)
    return float((p.argmax(axis=-1) == labels).mean())


def nll(probs: Union[np.ndarray, Tensor], labels: np.ndarray,
        from_logits: bool = False) -> float:
    """Average negative log likelihood of the true labels."""
    p = as_probs(probs, from_logits)
    labels = np.asarray(labels.data if isinstance(labels, Tensor) else labels, dtype=np.int64)
    picked = p[np.arange(len(labels)), labels]
    return float(-np.log(np.clip(picked, 1e-12, None)).mean())


def brier_score(probs: Union[np.ndarray, Tensor], labels: np.ndarray,
                from_logits: bool = False) -> float:
    """Mean squared difference between predicted probabilities and one-hot labels."""
    p = as_probs(probs, from_logits)
    labels = np.asarray(labels.data if isinstance(labels, Tensor) else labels, dtype=np.int64)
    one_hot = np.zeros_like(p)
    one_hot[np.arange(len(labels)), labels] = 1.0
    return float(((p - one_hot) ** 2).sum(axis=-1).mean())
