"""``repro.metrics`` — evaluation metrics for all experiments."""

from .calibration import calibration_curve, expected_calibration_error
from .classification import accuracy, as_probs, brier_score, nll
from .ood import auroc, entropy_cdf, ood_auroc_max_prob, predictive_entropy
from .regression import (gaussian_nll, image_error, mean_squared_error,
                         prediction_interval_coverage, root_mean_squared_error)

__all__ = [
    "accuracy",
    "nll",
    "brier_score",
    "as_probs",
    "expected_calibration_error",
    "calibration_curve",
    "predictive_entropy",
    "auroc",
    "ood_auroc_max_prob",
    "entropy_cdf",
    "mean_squared_error",
    "root_mean_squared_error",
    "gaussian_nll",
    "prediction_interval_coverage",
    "image_error",
]
