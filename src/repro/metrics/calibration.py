"""Calibration metrics: expected calibration error and reliability curves.

These produce exactly the quantities of the paper's Table 1/2 (ECE, computed
with 10 equal-width confidence bins as in Appendix A.2) and Figure 2(a)
(empirical accuracy per predicted-probability bin).
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..nn.tensor import Tensor
from .classification import as_probs

__all__ = ["expected_calibration_error", "calibration_curve"]


def _confidences_and_correct(probs, labels, from_logits: bool) -> Tuple[np.ndarray, np.ndarray]:
    p = as_probs(probs, from_logits)
    labels = np.asarray(labels.data if isinstance(labels, Tensor) else labels, dtype=np.int64)
    confidences = p.max(axis=-1)
    correct = (p.argmax(axis=-1) == labels).astype(np.float64)
    return confidences, correct


def _bin_mask(confidences: np.ndarray, low: float, high: float, first: bool) -> np.ndarray:
    """Membership mask for a ``(low, high]`` bin; the first bin is closed on
    the left, ``[low, high]``, so a confidence of exactly 0.0 is not dropped."""
    lower = (confidences >= low) if first else (confidences > low)
    return lower & (confidences <= high)


def expected_calibration_error(probs: Union[np.ndarray, Tensor], labels: np.ndarray,
                               num_bins: int = 10, from_logits: bool = False) -> float:
    """ECE: confidence-vs-accuracy gap averaged over equal-width confidence bins."""
    confidences, correct = _confidences_and_correct(probs, labels, from_logits)
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    ece = 0.0
    n = len(confidences)
    for i, (low, high) in enumerate(zip(edges[:-1], edges[1:])):
        in_bin = _bin_mask(confidences, low, high, first=i == 0)
        if not np.any(in_bin):
            continue
        bin_confidence = confidences[in_bin].mean()
        bin_accuracy = correct[in_bin].mean()
        ece += (in_bin.sum() / n) * abs(bin_confidence - bin_accuracy)
    return float(ece)


def calibration_curve(probs: Union[np.ndarray, Tensor], labels: np.ndarray,
                      num_bins: int = 10, from_logits: bool = False
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reliability diagram data: (bin confidence, bin accuracy, bin count).

    Bins with no samples are reported with NaN accuracy/confidence so callers
    can plot or skip them explicitly (Figure 2a of the paper).
    """
    confidences, correct = _confidences_and_correct(probs, labels, from_logits)
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bin_confidence = np.full(num_bins, np.nan)
    bin_accuracy = np.full(num_bins, np.nan)
    bin_count = np.zeros(num_bins, dtype=np.int64)
    for i, (low, high) in enumerate(zip(edges[:-1], edges[1:])):
        in_bin = _bin_mask(confidences, low, high, first=i == 0)
        bin_count[i] = int(in_bin.sum())
        if bin_count[i] > 0:
            bin_confidence[i] = confidences[in_bin].mean()
            bin_accuracy[i] = correct[in_bin].mean()
    return bin_confidence, bin_accuracy, bin_count
