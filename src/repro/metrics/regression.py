"""Regression and image-reconstruction metrics."""

from __future__ import annotations

from typing import Union

import numpy as np

from ..nn.tensor import Tensor

__all__ = ["mean_squared_error", "root_mean_squared_error", "gaussian_nll",
           "prediction_interval_coverage", "image_error"]


def _arr(x) -> np.ndarray:
    return x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)


def mean_squared_error(predictions, targets) -> float:
    return float(((_arr(predictions) - _arr(targets)) ** 2).mean())


def root_mean_squared_error(predictions, targets) -> float:
    return float(np.sqrt(mean_squared_error(predictions, targets)))


def gaussian_nll(mean, std, targets) -> float:
    """Average negative log density of ``targets`` under ``N(mean, std^2)``."""
    mean_a, std_a, t = _arr(mean), np.clip(_arr(std), 1e-12, None), _arr(targets)
    return float((0.5 * np.log(2 * np.pi * std_a ** 2) + (t - mean_a) ** 2 / (2 * std_a ** 2)).mean())


def prediction_interval_coverage(mean, std, targets, num_std: float = 2.0) -> float:
    """Fraction of targets falling within ``mean ± num_std * std``."""
    mean_a, std_a, t = _arr(mean), _arr(std), _arr(targets)
    inside = np.abs(t - mean_a) <= num_std * std_a
    return float(inside.mean())


def image_error(predicted, target) -> float:
    """Mean squared per-pixel error between rendered and target images.

    This is the held-out-view error reported for the NeRF experiment
    (paper Figure 3: 9.4e-3 deterministic vs 8.1e-3 Bayesian).
    """
    return mean_squared_error(predicted, target)
