"""Reproduction of "TyXe: Pyro-based Bayesian neural nets for Pytorch" (MLSYS 2022).

Package layout
--------------
``repro.nn``
    NumPy-backed autodiff + neural-network substrate (PyTorch substitute).
``repro.ppl``
    Miniature probabilistic programming layer with effect handlers, SVI,
    autoguides and MCMC (Pyro substitute).
``repro.core``
    The paper's contribution: priors, likelihoods, guides, BNN wrapper
    classes, BNN-specific effect handlers and variational continual learning.
``repro.gnn``, ``repro.render``
    Graph-neural-network and volumetric-rendering substrates (DGL /
    Pytorch3D substitutes) used by the compatibility experiments.
``repro.datasets``, ``repro.metrics``, ``repro.experiments``
    Synthetic data generators, evaluation metrics and per-table/figure
    experiment harnesses.
"""

__version__ = "0.1.0"

from . import nn

__all__ = ["nn", "__version__"]
