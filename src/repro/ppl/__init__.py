"""``repro.ppl`` — a miniature probabilistic programming layer (Pyro substitute).

Provides distributions with reparameterized sampling, an effect-handler
(``poutine``) runtime, ``sample``/``param``/``plate`` primitives backed by a
global parameter store, stochastic variational inference with automatic
guides, and HMC/NUTS MCMC.
"""

from . import constraints
from . import distributions
from . import infer
from . import optim
from . import poutine
from .params import ParamStore, clear_param_store, get_param_store
from .primitives import deterministic, factor, param, plate, sample
from .rng import fork_rng, get_rng, set_rng_seed

__all__ = [
    "constraints",
    "distributions",
    "infer",
    "optim",
    "poutine",
    "ParamStore",
    "get_param_store",
    "clear_param_store",
    "sample",
    "param",
    "plate",
    "deterministic",
    "factor",
    "get_rng",
    "set_rng_seed",
    "fork_rng",
]
