"""Parameter constraints and the bijective transforms that enforce them.

``repro.ppl.param`` stores *unconstrained* values in the parameter store and
applies the transform associated with a constraint on read, so gradient-based
optimization always operates on an unconstrained space (exactly like Pyro's
``constraint=`` argument to ``pyro.param``).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..nn.tensor import Tensor

__all__ = [
    "Constraint",
    "Real",
    "Positive",
    "Interval",
    "real",
    "positive",
    "interval",
    "transform_to",
]


class Constraint:
    """A constraint describes the support of a parameter.

    ``transform`` maps unconstrained -> constrained (differentiably, on
    Tensors); ``inv_transform`` maps a constrained initial value back to the
    unconstrained space (NumPy only, used once at initialization);
    ``check`` tests membership.
    """

    def transform(self, unconstrained: Tensor) -> Tensor:
        raise NotImplementedError

    def inv_transform(self, constrained: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def check(self, value: np.ndarray) -> bool:
        raise NotImplementedError


class Real(Constraint):
    """Unconstrained real numbers (identity transform)."""

    def transform(self, unconstrained: Tensor) -> Tensor:
        return unconstrained

    def inv_transform(self, constrained: np.ndarray) -> np.ndarray:
        return np.asarray(constrained, dtype=np.float64)

    def check(self, value: np.ndarray) -> bool:
        return bool(np.all(np.isfinite(value)))

    def __repr__(self) -> str:
        return "Real()"


class Positive(Constraint):
    """Strictly positive numbers via a softplus bijection."""

    def transform(self, unconstrained: Tensor) -> Tensor:
        return unconstrained.softplus()

    def inv_transform(self, constrained: np.ndarray) -> np.ndarray:
        c = np.asarray(constrained, dtype=np.float64)
        if np.any(c <= 0):
            raise ValueError("initial value for a positive-constrained parameter must be > 0")
        # inverse softplus: log(exp(x) - 1), stable for large x
        return np.where(c > 20, c, np.log(np.expm1(np.clip(c, 1e-12, None))))

    def check(self, value: np.ndarray) -> bool:
        return bool(np.all(np.asarray(value) > 0))

    def __repr__(self) -> str:
        return "Positive()"


class Interval(Constraint):
    """Values in an open interval ``(low, high)`` via a scaled sigmoid."""

    def __init__(self, low: float, high: float) -> None:
        if not high > low:
            raise ValueError(f"need high > low, got ({low}, {high})")
        self.low = float(low)
        self.high = float(high)

    def transform(self, unconstrained: Tensor) -> Tensor:
        # clamp away from the boundaries so downstream code (e.g. a Normal
        # scale parameter) never sees an exactly-zero or exactly-high value
        proportion = unconstrained.sigmoid().clamp(1e-6, 1.0 - 1e-6)
        return proportion * (self.high - self.low) + self.low

    def inv_transform(self, constrained: np.ndarray) -> np.ndarray:
        c = np.asarray(constrained, dtype=np.float64)
        p = np.clip((c - self.low) / (self.high - self.low), 1e-7, 1 - 1e-7)
        return np.log(p) - np.log1p(-p)

    def check(self, value: np.ndarray) -> bool:
        v = np.asarray(value)
        return bool(np.all((v > self.low) & (v < self.high)))

    def __repr__(self) -> str:
        return f"Interval({self.low}, {self.high})"


real = Real()
positive = Positive()


def interval(low: float, high: float) -> Interval:
    return Interval(low, high)


def transform_to(constraint: Union[Constraint, None]) -> Constraint:
    """Return the transform-bearing constraint object (defaulting to real)."""
    return constraint if constraint is not None else real
