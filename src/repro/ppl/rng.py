"""Global random-number-generator handling for the probabilistic layer.

Pyro exposes ``pyro.set_rng_seed``; everything stochastic in ``repro.ppl``
(and in the distributions used by the BNN classes) draws from the generator
managed here so that experiments and tests are reproducible with a single
seed call.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

import numpy as np

__all__ = ["get_rng", "set_rng_seed", "fork_rng"]

_RNG: np.random.Generator = np.random.default_rng(0)


def get_rng() -> np.random.Generator:
    """Return the global generator used by all ``repro.ppl`` sampling."""
    return _RNG


def set_rng_seed(seed: int) -> None:
    """Re-seed the global generator (equivalent to ``pyro.set_rng_seed``)."""
    global _RNG
    _RNG = np.random.default_rng(seed)


@contextlib.contextmanager
def fork_rng(seed: Optional[int] = None) -> Iterator[np.random.Generator]:
    """Temporarily replace the global generator, restoring it afterwards."""
    global _RNG
    previous = _RNG
    _RNG = np.random.default_rng(seed) if seed is not None else np.random.default_rng(previous.integers(2 ** 63))
    try:
        yield _RNG
    finally:
        _RNG = previous
