"""Effect handlers (the ``poutine`` library of the Pyro substitute)."""

from .handlers import (BlockMessenger, ConditionMessenger, MaskMessenger,
                       ReplayMessenger, ScaleMessenger, SeedMessenger, block,
                       condition, mask, replay, scale, seed)
from .runtime import (Messenger, am_i_wrapped, apply_stack, get_stack,
                      new_message, shape_only, shape_only_active)
from .trace import Trace, TraceHandler, TraceMessenger, stack_traces, trace

__all__ = [
    "Messenger",
    "apply_stack",
    "am_i_wrapped",
    "get_stack",
    "new_message",
    "shape_only",
    "shape_only_active",
    "Trace",
    "TraceMessenger",
    "TraceHandler",
    "trace",
    "stack_traces",
    "ReplayMessenger",
    "BlockMessenger",
    "ConditionMessenger",
    "MaskMessenger",
    "ScaleMessenger",
    "SeedMessenger",
    "replay",
    "block",
    "condition",
    "mask",
    "scale",
    "seed",
]
