"""Standard effect handlers: replay, block, condition, mask, scale, seed.

Each handler is a :class:`~repro.ppl.poutine.runtime.Messenger` usable as a
context manager or as a higher-order function wrapping a model, e.g.
``replay(model, trace=guide_trace)(*args)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Union

import numpy as np

from ...nn.tensor import Tensor
from ..rng import set_rng_seed
from .runtime import Message, Messenger
from .trace import Trace

__all__ = [
    "ReplayMessenger",
    "BlockMessenger",
    "ConditionMessenger",
    "MaskMessenger",
    "ScaleMessenger",
    "SeedMessenger",
    "replay",
    "block",
    "condition",
    "mask",
    "scale",
    "seed",
]


class _BoundMessenger(Messenger):
    """Mixin making handlers usable both as context managers and as wrappers."""

    def __new__(cls, fn: Optional[Callable] = None, *args, **kwargs):
        instance = super().__new__(cls)
        return instance

    def __init__(self, fn: Optional[Callable] = None) -> None:
        self.fn = fn

    def __call__(self, *args, **kwargs):
        if self.fn is None:
            # acting as a decorator: first positional argument is the function
            fn = args[0]
            return super().__call__(fn)
        with self:
            return self.fn(*args, **kwargs)


class ReplayMessenger(_BoundMessenger):
    """Force sample sites to take the values recorded in ``trace``."""

    def __init__(self, fn: Optional[Callable] = None, trace: Optional[Trace] = None) -> None:
        super().__init__(fn)
        if trace is None:
            raise ValueError("replay requires a trace")
        self.trace = trace

    def process_message(self, msg: Message) -> None:
        if msg["type"] != "sample" or msg["is_observed"]:
            return
        name = msg["name"]
        if name in self.trace:
            guide_site = self.trace[name]
            if guide_site["type"] != "sample":
                return
            msg["value"] = guide_site["value"]
            msg["infer"] = {**guide_site.get("infer", {}), **msg["infer"]}
            msg["done"] = True


class BlockMessenger(_BoundMessenger):
    """Hide matching sites from handlers further out on the stack."""

    def __init__(self, fn: Optional[Callable] = None, hide_fn: Optional[Callable[[Message], bool]] = None,
                 hide: Optional[Iterable[str]] = None, expose: Optional[Iterable[str]] = None,
                 hide_all: bool = True) -> None:
        super().__init__(fn)
        self.hide_fn = hide_fn
        self.hide = set(hide) if hide is not None else None
        self.expose = set(expose) if expose is not None else None
        self.hide_all = hide_all

    def _hidden(self, msg: Message) -> bool:
        if self.hide_fn is not None:
            return bool(self.hide_fn(msg))
        if self.hide is not None:
            return msg["name"] in self.hide
        if self.expose is not None:
            return msg["name"] not in self.expose
        return self.hide_all

    def process_message(self, msg: Message) -> None:
        if self._hidden(msg):
            msg["stop"] = True


class ConditionMessenger(_BoundMessenger):
    """Fix the value of named latent sites to observed data."""

    def __init__(self, fn: Optional[Callable] = None, data: Optional[Dict[str, object]] = None) -> None:
        super().__init__(fn)
        self.data = data or {}

    def process_message(self, msg: Message) -> None:
        if msg["type"] == "sample" and msg["name"] in self.data:
            value = self.data[msg["name"]]
            msg["value"] = value if isinstance(value, Tensor) else Tensor(np.asarray(value))
            msg["is_observed"] = True
            msg["done"] = True


class MaskMessenger(_BoundMessenger):
    """Multiply the log-density of sample sites by a boolean/float mask."""

    def __init__(self, fn: Optional[Callable] = None, mask: Union[np.ndarray, bool, None] = None) -> None:
        super().__init__(fn)
        self.mask_value = mask

    def process_message(self, msg: Message) -> None:
        if msg["type"] != "sample":
            return
        new_mask = np.asarray(self.mask_value)
        if msg["mask"] is None:
            msg["mask"] = new_mask
        else:
            msg["mask"] = np.asarray(msg["mask"]) * new_mask


class ScaleMessenger(_BoundMessenger):
    """Rescale the log-density of sample sites (e.g. for mini-batching)."""

    def __init__(self, fn: Optional[Callable] = None, scale: float = 1.0) -> None:
        super().__init__(fn)
        self.scale = scale

    def process_message(self, msg: Message) -> None:
        if msg["type"] == "sample":
            msg["scale"] = msg["scale"] * self.scale


class SeedMessenger(_BoundMessenger):
    """Re-seed the global RNG before running the wrapped function."""

    def __init__(self, fn: Optional[Callable] = None, rng_seed: int = 0) -> None:
        super().__init__(fn)
        self.rng_seed = rng_seed

    def __enter__(self) -> "SeedMessenger":
        set_rng_seed(self.rng_seed)
        return super().__enter__()


def replay(fn: Optional[Callable] = None, trace: Optional[Trace] = None) -> ReplayMessenger:
    return ReplayMessenger(fn, trace=trace)


def block(fn: Optional[Callable] = None, hide_fn: Optional[Callable] = None,
          hide: Optional[Iterable[str]] = None, expose: Optional[Iterable[str]] = None,
          hide_all: bool = True) -> BlockMessenger:
    return BlockMessenger(fn, hide_fn=hide_fn, hide=hide, expose=expose, hide_all=hide_all)


def condition(fn: Optional[Callable] = None, data: Optional[Dict[str, object]] = None) -> ConditionMessenger:
    return ConditionMessenger(fn, data=data)


def mask(fn: Optional[Callable] = None, mask: Union[np.ndarray, bool, None] = None) -> MaskMessenger:
    return MaskMessenger(fn, mask=mask)


def scale(fn: Optional[Callable] = None, scale: float = 1.0) -> ScaleMessenger:
    return ScaleMessenger(fn, scale=scale)


def seed(fn: Optional[Callable] = None, rng_seed: int = 0) -> SeedMessenger:
    return SeedMessenger(fn, rng_seed=rng_seed)
