"""Execution traces: recording every sample/param site of a model run.

``trace(fn).get_trace(*args)`` runs ``fn`` under a :class:`TraceMessenger`
and returns a :class:`Trace` — an ordered mapping from site names to message
dicts — which the inference code (ELBOs, MCMC, Predictive-style replay) then
inspects to compute log-joints.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Iterator, Optional, Sequence

import numpy as np

from ...nn.tensor import Tensor, stack as _stack_tensors
from ..distributions import sum_rightmost
from .runtime import Message, Messenger

__all__ = ["Trace", "TraceMessenger", "TraceHandler", "trace", "stack_traces"]


class Trace:
    """An ordered record of the sites touched during one model execution."""

    def __init__(self) -> None:
        self.nodes: "OrderedDict[str, Message]" = OrderedDict()
        #: number of per-particle traces merged by :func:`stack_traces`
        #: (1 for an ordinary single-execution trace)
        self.num_stacked: int = 1

    def add_node(self, name: str, site: Optional[Message] = None, **fields) -> None:
        if name in self.nodes:
            raise ValueError(f"site {name!r} appears twice in a single trace")
        node = dict(site) if site is not None else {}
        node.update(fields)
        node.setdefault("name", name)
        self.nodes[name] = node

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    def __getitem__(self, name: str) -> Message:
        return self.nodes[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def stochastic_nodes(self) -> Iterator[str]:
        """Names of non-observed sample sites."""
        for name, site in self.nodes.items():
            if site["type"] == "sample" and not site["is_observed"]:
                yield name

    def observation_nodes(self) -> Iterator[str]:
        for name, site in self.nodes.items():
            if site["type"] == "sample" and site["is_observed"]:
                yield name

    def param_nodes(self) -> Iterator[str]:
        for name, site in self.nodes.items():
            if site["type"] == "param":
                yield name

    def compute_log_prob(self) -> None:
        """Attach ``log_prob`` / ``log_prob_sum`` (scaled, masked) to sample sites."""
        for site in self.nodes.values():
            if site["type"] != "sample":
                continue
            if "log_prob_sum" in site:
                continue
            log_prob = site["fn"].log_prob(site["value"])
            if site.get("mask") is not None:
                mask = site["mask"]
                mask_arr = mask.data if isinstance(mask, Tensor) else np.asarray(mask)
                log_prob = log_prob * Tensor(mask_arr.astype(np.float64))
            site["log_prob"] = log_prob
            log_prob_sum = log_prob.sum()
            scale = site.get("scale", 1.0)
            if scale != 1.0:
                log_prob_sum = log_prob_sum * scale
            site["log_prob_sum"] = log_prob_sum

    def log_prob_sum(self) -> Tensor:
        """Total (scaled) log-density of all sample sites in the trace."""
        self.compute_log_prob()
        total: Optional[Tensor] = None
        for site in self.nodes.values():
            if site["type"] != "sample":
                continue
            total = site["log_prob_sum"] if total is None else total + site["log_prob_sum"]
        return total if total is not None else Tensor(0.0)

    def site_shapes(self) -> "OrderedDict[str, Dict[str, Any]]":
        """Shape summary of every sample site (the static validator's view).

        Maps site name to ``{"distribution", "batch_shape", "event_shape",
        "value_shape", "is_observed", "shape_only_error"}``.  Works on both
        ordinary traces and ones recorded under the shape-only mode of
        :func:`repro.ppl.poutine.runtime.shape_only` (where values are
        zero-filled placeholders of the correct shape).
        """
        summary: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        for name, site in self.nodes.items():
            if site.get("type") != "sample":
                continue
            fn = site.get("fn")
            value = site.get("value")
            summary[name] = {
                "distribution": type(fn).__name__ if fn is not None else None,
                "batch_shape": tuple(getattr(fn, "batch_shape", ())),
                "event_shape": tuple(getattr(fn, "event_shape", ())),
                "value_shape": tuple(np.shape(value.data if isinstance(value, Tensor)
                                              else value)),
                "is_observed": bool(site.get("is_observed")),
                "shape_only_error": site.get("shape_only_error"),
            }
        return summary

    def copy(self) -> "Trace":
        new = Trace()
        for name, site in self.nodes.items():
            new.nodes[name] = dict(site)
        return new

    def detach_values(self) -> "Trace":
        """Return a copy whose sample values are detached from the autograd graph."""
        new = self.copy()
        for site in new.nodes.values():
            if isinstance(site.get("value"), Tensor):
                site["value"] = site["value"].detach()
        return new


def stack_traces(traces: Sequence["Trace"]) -> "Trace":
    """Merge per-particle traces into one whose latent sample values carry a
    leading particle dimension.

    This is the trace-level half of the vectorized-particles execution mode:
    ``K`` traces of the same program are collapsed into a single trace where
    every non-observed sample site holds a ``(K, ...)``-stacked value (the
    stack keeps autograd history, so reparameterized gradients still flow to
    the guide parameters).  Distributions and bookkeeping fields are taken
    from the first trace; :class:`~repro.ppl.distributions.Delta` site
    distributions — whose location is itself a per-particle sample, as in the
    low-rank joint guide — are rebuilt around the stacked value so their
    log-density stays zero for every particle.  Replaying a model against the
    stacked trace runs one batched forward pass carrying all ``K`` samples;
    latent sites the stacked trace does *not* cover draw their own ``K``
    per-particle prior samples when the replay runs inside a sized
    ``repro.nn.vectorized_samples`` context (see
    :func:`repro.ppl.poutine.runtime.default_process_message`).  The number
    of merged traces is recorded on the result as ``num_stacked``.
    """
    if not traces:
        raise ValueError("stack_traces requires at least one trace")
    from ..distributions import Delta

    first = traces[0]
    stacked = Trace()
    stacked.num_stacked = len(traces)
    for name, site in first.nodes.items():
        node = dict(site)
        if site.get("type") == "sample" and not site.get("is_observed"):
            if any(name not in t for t in traces[1:]):
                raise ValueError(f"site {name!r} is missing from some particle traces")
            node["value"] = _stack_tensors([t[name]["value"] for t in traces])
            node.pop("log_prob", None)
            node.pop("log_prob_sum", None)
            if isinstance(site.get("fn"), Delta):
                node["fn"] = Delta(node["value"], log_density=site["fn"].log_density,
                                   event_dim=site["fn"].event_dim)
        stacked.nodes[name] = node
    return stacked


class TraceMessenger(Messenger):
    """Record every message passing through into a :class:`Trace`."""

    def __init__(self) -> None:
        self.trace = Trace()

    def __enter__(self) -> "TraceMessenger":
        self.trace = Trace()
        return super().__enter__()

    def postprocess_message(self, msg: Message) -> None:
        site = {k: v for k, v in msg.items() if k not in ("stop", "done")}
        self.trace.add_node(msg["name"], site)


class TraceHandler:
    """Callable wrapper produced by :func:`trace`."""

    def __init__(self, fn: Callable) -> None:
        self.fn = fn
        self.msngr = TraceMessenger()

    def __call__(self, *args, **kwargs):
        with self.msngr:
            ret = self.fn(*args, **kwargs)
        self.msngr.trace.add_node("_RETURN", type="return", value=ret)
        return ret

    def get_trace(self, *args, **kwargs) -> Trace:
        self(*args, **kwargs)
        return self.msngr.trace


def trace(fn: Callable) -> TraceHandler:
    """``trace(model).get_trace(*args)`` records all sites of one execution."""
    return TraceHandler(fn)
