"""The effect-handler runtime: the messenger stack and message dispatch.

This follows the design of Pyro's ``poutine`` (itself based on Plotkin &
Pretnar's algebraic effect handlers): probabilistic primitives such as
``sample`` and ``param`` construct *messages* which are threaded through a
stack of :class:`Messenger` objects.  Handlers closer to the primitive
(innermost) see the message first; a handler may set ``msg["stop"]`` to hide
the site from handlers further out (this is how ``block`` works).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

__all__ = ["Message", "Messenger", "apply_stack", "am_i_wrapped", "get_stack"]

Message = Dict[str, Any]

_PYRO_STACK: List["Messenger"] = []


def get_stack() -> List["Messenger"]:
    """Return the live messenger stack (outermost handler first)."""
    return _PYRO_STACK


def am_i_wrapped() -> bool:
    """True when at least one effect handler is active."""
    return len(_PYRO_STACK) > 0


def new_message(msg_type: str, name: Optional[str], fn: Optional[Callable],
                value: Any = None, is_observed: bool = False, **kwargs) -> Message:
    """Construct a fresh message dict with all bookkeeping fields present."""
    msg: Message = {
        "type": msg_type,
        "name": name,
        "fn": fn,
        "value": value,
        "is_observed": is_observed,
        "scale": 1.0,
        "mask": None,
        "infer": kwargs.pop("infer", None) or {},
        "args": kwargs.pop("args", ()),
        "kwargs": kwargs.pop("kwargs", {}),
        "stop": False,
        "done": False,
    }
    msg.update(kwargs)
    return msg


class Messenger:
    """Base effect handler; also usable as a context manager or decorator."""

    def __enter__(self) -> "Messenger":
        _PYRO_STACK.append(self)
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if _PYRO_STACK and _PYRO_STACK[-1] is self:
            _PYRO_STACK.pop()
        else:  # pragma: no cover - defensive, handlers should nest properly
            _PYRO_STACK.remove(self)

    def __call__(self, fn: Callable) -> Callable:
        def wrapped(*args, **kwargs):
            with self:
                return fn(*args, **kwargs)

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        return wrapped

    def process_message(self, msg: Message) -> None:
        """Hook run while the message travels outwards (innermost first)."""

    def postprocess_message(self, msg: Message) -> None:
        """Hook run after the site value exists (outermost first on the way back)."""


def default_process_message(msg: Message) -> None:
    """Fill in ``msg['value']`` by actually sampling / fetching the parameter."""
    if msg["done"]:
        return
    if msg["value"] is None:
        if msg["type"] == "sample":
            fn = msg["fn"]
            if getattr(fn, "has_rsample", False):
                msg["value"] = fn.rsample(*msg["args"], **msg["kwargs"])
            else:
                msg["value"] = fn.sample(*msg["args"], **msg["kwargs"])
        elif msg["type"] == "param":
            from ..params import get_param_store

            store = get_param_store()
            init_value, constraint = msg["args"]
            if init_value is None and msg["name"] not in store:
                raise ValueError(f"param {msg['name']!r} has no initial value and is not in the store")
            if msg["name"] in store:
                msg["value"] = store.get_param(msg["name"])
            else:
                msg["value"] = store.setdefault(msg["name"], init_value, constraint)
    msg["done"] = True


def apply_stack(msg: Message) -> Message:
    """Send ``msg`` through the active handlers and compute its value."""
    stack = _PYRO_STACK
    pointer = 0
    for pointer, messenger in enumerate(reversed(stack)):
        messenger.process_message(msg)
        if msg["stop"]:
            break
    default_process_message(msg)
    for messenger in stack[len(stack) - pointer - 1:]:
        messenger.postprocess_message(msg)
    return msg
