"""The effect-handler runtime: the messenger stack and message dispatch.

This follows the design of Pyro's ``poutine`` (itself based on Plotkin &
Pretnar's algebraic effect handlers): probabilistic primitives such as
``sample`` and ``param`` construct *messages* which are threaded through a
stack of :class:`Messenger` objects.  Handlers closer to the primitive
(innermost) see the message first; a handler may set ``msg["stop"]`` to hide
the site from handlers further out (this is how ``block`` works).
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, Iterator, List, Optional

import numpy as np

from ...nn.functional import sample_sizes as _sample_sizes
from ...nn.tensor import Tensor

__all__ = ["Message", "Messenger", "apply_stack", "am_i_wrapped", "get_stack",
           "shape_only", "shape_only_active"]

Message = Dict[str, Any]

_PYRO_STACK: List["Messenger"] = []


def get_stack() -> List["Messenger"]:
    """Return the live messenger stack (outermost handler first)."""
    return _PYRO_STACK


def am_i_wrapped() -> bool:
    """True when at least one effect handler is active."""
    return len(_PYRO_STACK) > 0


def new_message(msg_type: str, name: Optional[str], fn: Optional[Callable],
                value: Any = None, is_observed: bool = False, **kwargs) -> Message:
    """Construct a fresh message dict with all bookkeeping fields present."""
    msg: Message = {
        "type": msg_type,
        "name": name,
        "fn": fn,
        "value": value,
        "is_observed": is_observed,
        "scale": 1.0,
        "mask": None,
        "infer": kwargs.pop("infer", None) or {},
        "args": kwargs.pop("args", ()),
        "kwargs": kwargs.pop("kwargs", {}),
        "stop": False,
        "done": False,
    }
    msg.update(kwargs)
    return msg


class Messenger:
    """Base effect handler; also usable as a context manager or decorator."""

    def __enter__(self) -> "Messenger":
        _PYRO_STACK.append(self)
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if _PYRO_STACK and _PYRO_STACK[-1] is self:
            _PYRO_STACK.pop()
        else:  # pragma: no cover - defensive, handlers should nest properly
            _PYRO_STACK.remove(self)

    def __call__(self, fn: Callable) -> Callable:
        def wrapped(*args, **kwargs):
            with self:
                return fn(*args, **kwargs)

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        return wrapped

    def process_message(self, msg: Message) -> None:
        """Hook run while the message travels outwards (innermost first)."""

    def postprocess_message(self, msg: Message) -> None:
        """Hook run after the site value exists (outermost first on the way back)."""


# --------------------------------------------------------------------------
# Shape-only (abstract) execution mode.
#
# Under ``with shape_only():`` every latent ``sample`` site receives a
# zero-valued tensor of exactly the shape a real draw would have
# (``sample_shape + batch_shape + event_shape``) instead of consuming the RNG
# stream.  Traces recorded in this mode therefore carry every site's name,
# distribution and shapes — the raw material of the static model/guide
# validator in :mod:`repro.analysis.validate` — at the cost of one cheap
# forward pass and zero random draws.  ``param`` sites resolve normally (the
# parameter store is deterministic).  The vectorized-axis collision that
# :func:`_vectorized_sample_shape` refuses at runtime is recorded on the
# message as ``shape_only_error`` instead of raised, so the validator can
# report every defect of a model in one pass.
# --------------------------------------------------------------------------
_SHAPE_ONLY = False


def shape_only_active() -> bool:
    """True while the shape-only tracing mode is entered."""
    return _SHAPE_ONLY


@contextlib.contextmanager
def shape_only() -> Iterator[None]:
    """Trace models abstractly: sites record shapes but draw no values."""
    global _SHAPE_ONLY
    previous = _SHAPE_ONLY
    _SHAPE_ONLY = True
    try:
        yield
    finally:
        _SHAPE_ONLY = previous


def _abstract_sample_value(msg: Message) -> Tensor:
    """A zero tensor of the exact shape a real draw at this site would have."""
    fn = msg["fn"]
    try:
        sample_shape = _vectorized_sample_shape(msg)
    except ValueError as exc:  # vectorized-axis collision: record, don't raise
        msg["shape_only_error"] = str(exc)
        sample_shape = ()
    if not sample_shape and msg["args"]:
        sample_shape = tuple(msg["args"][0])
    shape = (tuple(sample_shape) + tuple(getattr(fn, "batch_shape", ()))
             + tuple(getattr(fn, "event_shape", ())))
    msg["shape_only"] = True
    return Tensor(np.zeros(shape))


def _vectorized_sample_shape(msg: Message) -> tuple:
    """Leading sample shape a latent draw must carry under vectorized replay.

    Inside a *sized* ``repro.nn.vectorized_samples`` context (the vectorized
    ELBO replays the model against a particle-stacked guide trace with
    ``sizes=(num_particles,)``) every latent site that actually executes is
    one the guide did not cover, so it must receive ``num_particles``
    independent prior draws stacked along the declared axes — a single shared
    draw would silently collapse the site's per-particle variability.  The
    batched draw consumes the RNG stream exactly like that many sequential
    per-particle draws of the same site (NumPy generators fill sample-shape
    batches from the stream in order).  Size-less contexts (plain batched
    forwards with no sample statements of their own) keep the default
    single-draw behaviour, as does an explicit caller-provided sample shape.

    One configuration is refused: a site whose distribution's own shape
    already *leads* with the declared particle sizes — e.g. its parameters
    were computed from a particle-stacked upstream latent, as in a
    hierarchical model whose parent the guide covers but whose child it does
    not.  Prepending the particle axes there would draw ``K x K`` values
    (silently wrong), while drawing plainly cannot be distinguished from a
    genuine batch axis that coincidentally equals ``num_particles``, so the
    estimator raises and points at the looped path instead.
    """
    sizes = _sample_sizes()
    if not sizes or any(size is None for size in sizes) or msg["args"] or msg["kwargs"]:
        return ()
    sizes = tuple(sizes)
    fn = msg["fn"]
    fn_shape = tuple(getattr(fn, "batch_shape", ())) + tuple(getattr(fn, "event_shape", ()))
    if fn_shape[:len(sizes)] == sizes:
        raise ValueError(
            f"cannot vectorize latent site {msg['name']!r}: its distribution's "
            f"shape {fn_shape} already leads with the active particle sizes "
            f"{sizes}, so a batched prior draw cannot tell a particle axis "
            "from a genuine batch axis (this happens when the site's "
            "parameters depend on a particle-stacked latent, or when a batch "
            "dimension coincidentally equals num_particles) — cover the site "
            "with the guide or use the looped estimator "
            "(vectorize_particles=False / vectorized=False); "
            "`repro check-model` reports this configuration statically, "
            "before any training run")
    return sizes


def default_process_message(msg: Message) -> None:
    """Fill in ``msg['value']`` by actually sampling / fetching the parameter."""
    if msg["done"]:
        return
    if msg["value"] is None:
        if msg["type"] == "sample" and _SHAPE_ONLY:
            msg["value"] = _abstract_sample_value(msg)
        elif msg["type"] == "sample":
            fn = msg["fn"]
            sample_shape = _vectorized_sample_shape(msg)
            if sample_shape:
                if getattr(fn, "has_rsample", False):
                    msg["value"] = fn.rsample(sample_shape)
                else:
                    msg["value"] = fn.sample(sample_shape)
            elif getattr(fn, "has_rsample", False):
                msg["value"] = fn.rsample(*msg["args"], **msg["kwargs"])
            else:
                msg["value"] = fn.sample(*msg["args"], **msg["kwargs"])
        elif msg["type"] == "param":
            from ..params import get_param_store

            store = get_param_store()
            init_value, constraint = msg["args"]
            if init_value is None and msg["name"] not in store:
                raise ValueError(f"param {msg['name']!r} has no initial value and is not in the store")
            if msg["name"] in store:
                msg["value"] = store.get_param(msg["name"])
            else:
                msg["value"] = store.setdefault(msg["name"], init_value, constraint)
    msg["done"] = True


def apply_stack(msg: Message) -> Message:
    """Send ``msg`` through the active handlers and compute its value."""
    stack = _PYRO_STACK
    pointer = 0
    for pointer, messenger in enumerate(reversed(stack)):
        messenger.process_message(msg)
        if msg["stop"]:
            break
    default_process_message(msg)
    for messenger in stack[len(stack) - pointer - 1:]:
        messenger.postprocess_message(msg)
    return msg
