"""Global parameter store, mirroring ``pyro.get_param_store()``.

Learnable parameters created with :func:`repro.ppl.param` live here rather
than on module objects.  Values are stored *unconstrained*; the constraint's
transform is applied on read so that optimizers always work in an
unconstrained space.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..nn.tensor import Parameter, Tensor
from . import constraints

__all__ = ["ParamStore", "get_param_store", "clear_param_store"]


class ParamStore:
    """Maps site names to ``(unconstrained Parameter, Constraint)`` pairs."""

    def __init__(self) -> None:
        self._params: "OrderedDict[str, Parameter]" = OrderedDict()
        self._constraints: Dict[str, constraints.Constraint] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __len__(self) -> int:
        return len(self._params)

    def keys(self):
        return self._params.keys()

    def setdefault(self, name: str, init_value: np.ndarray,
                   constraint: Optional[constraints.Constraint] = None) -> Tensor:
        """Create the parameter if missing and return its constrained value."""
        constraint = constraints.transform_to(constraint)
        if name not in self._params:
            unconstrained = constraint.inv_transform(np.asarray(init_value, dtype=np.float64))
            self._params[name] = Parameter(unconstrained)
            self._constraints[name] = constraint
        return self.get_param(name)

    def get_param(self, name: str) -> Tensor:
        """Return the constrained (differentiable) value of a parameter."""
        unconstrained = self._params[name]
        return self._constraints[name].transform(unconstrained)

    def get_unconstrained(self, name: str) -> Parameter:
        return self._params[name]

    def set_param(self, name: str, value: np.ndarray) -> None:
        """Overwrite the constrained value of an existing parameter in place."""
        constraint = self._constraints[name]
        self._params[name].data[...] = constraint.inv_transform(np.asarray(value, dtype=np.float64))

    def delete(self, name: str) -> None:
        self._params.pop(name, None)
        self._constraints.pop(name, None)

    def named_parameters(self) -> Iterator[Tuple[str, Parameter]]:
        """Iterate over (name, unconstrained Parameter) pairs for optimization."""
        yield from self._params.items()

    def values(self) -> Iterator[Parameter]:
        yield from self._params.values()

    def clear(self) -> None:
        self._params.clear()
        self._constraints.clear()

    # state handling --------------------------------------------------------
    def get_state(self) -> Dict[str, Dict[str, np.ndarray]]:
        return {
            "params": {k: v.data.copy() for k, v in self._params.items()},
            "constraints": dict(self._constraints),
        }

    def set_state(self, state: Dict) -> None:
        self.clear()
        self._constraints.update(state["constraints"])
        for name, data in state["params"].items():
            self._params[name] = Parameter(data.copy())

    def __repr__(self) -> str:
        return f"ParamStore({list(self._params)})"


_PARAM_STORE = ParamStore()


def get_param_store() -> ParamStore:
    """Return the global parameter store."""
    return _PARAM_STORE


def clear_param_store() -> None:
    """Remove all parameters from the global store (like ``pyro.clear_param_store``)."""
    _PARAM_STORE.clear()
