"""Probability distributions with reparameterized sampling and differentiable
log-densities, mirroring ``pyro.distributions`` (itself a thin layer over
``torch.distributions``).

All parameters and values are :class:`repro.nn.Tensor`; gradients flow
through ``rsample`` (for reparameterizable families) and ``log_prob`` so the
distributions can be used directly inside variational objectives.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple, Type, Union

import numpy as np
from scipy import special as _sp_special

from ..nn import functional as F
from ..nn.tensor import Tensor
from .rng import get_rng

__all__ = [
    "Distribution",
    "Normal",
    "LogNormal",
    "Uniform",
    "Delta",
    "Categorical",
    "Bernoulli",
    "Poisson",
    "Gamma",
    "Independent",
    "LowRankMultivariateNormal",
    "kl_divergence",
    "register_kl",
    "sum_rightmost",
]

_LOG_2PI = math.log(2.0 * math.pi)

ArrayOrTensor = Union[Tensor, np.ndarray, float, int]


def _as_tensor(value: ArrayOrTensor) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(np.asarray(value, dtype=np.float64))


def _broadcast_shapes(*shapes: Tuple[int, ...]) -> Tuple[int, ...]:
    return np.broadcast_shapes(*shapes)


def sum_rightmost(value: Tensor, n: int) -> Tensor:
    """Sum the rightmost ``n`` dimensions of ``value``."""
    if n == 0:
        return value
    axes = tuple(range(value.ndim - n, value.ndim))
    return value.sum(axis=axes)


class Distribution:
    """Base class: ``batch_shape`` x ``event_shape`` semantics as in torch."""

    has_rsample: bool = False

    def __init__(self, batch_shape: Tuple[int, ...] = (), event_shape: Tuple[int, ...] = ()) -> None:
        self.batch_shape = tuple(batch_shape)
        self.event_shape = tuple(event_shape)

    # shape helpers ---------------------------------------------------------
    def shape(self, sample_shape: Tuple[int, ...] = ()) -> Tuple[int, ...]:
        return tuple(sample_shape) + self.batch_shape + self.event_shape

    # interface -------------------------------------------------------------
    def sample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        """Draw a non-differentiable sample."""
        raise NotImplementedError

    def rsample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        """Draw a reparameterized (differentiable) sample."""
        raise NotImplementedError(f"{type(self).__name__} does not support rsample")

    def log_prob(self, value: ArrayOrTensor) -> Tensor:
        raise NotImplementedError

    def entropy(self) -> Tensor:
        raise NotImplementedError(f"{type(self).__name__} does not implement entropy")

    @property
    def mean(self) -> Tensor:
        raise NotImplementedError

    @property
    def variance(self) -> Tensor:
        raise NotImplementedError

    @property
    def stddev(self) -> Tensor:
        return self.variance.sqrt()

    # conveniences ----------------------------------------------------------
    def to_event(self, reinterpreted_batch_ndims: Optional[int] = None) -> "Distribution":
        """Reinterpret (the rightmost) batch dimensions as event dimensions."""
        if reinterpreted_batch_ndims is None:
            reinterpreted_batch_ndims = len(self.batch_shape)
        if reinterpreted_batch_ndims == 0:
            return self
        return Independent(self, reinterpreted_batch_ndims)

    def expand(self, batch_shape: Tuple[int, ...]) -> "Distribution":
        raise NotImplementedError(f"{type(self).__name__} does not implement expand")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(batch_shape={self.batch_shape}, event_shape={self.event_shape})"


class Normal(Distribution):
    """Diagonal Gaussian ``N(loc, scale^2)``."""

    has_rsample = True

    def __init__(self, loc: ArrayOrTensor, scale: ArrayOrTensor) -> None:
        self.loc = _as_tensor(loc)
        self.scale = _as_tensor(scale)
        batch_shape = _broadcast_shapes(self.loc.shape, self.scale.shape)
        super().__init__(batch_shape)

    def expand(self, batch_shape: Tuple[int, ...]) -> "Normal":
        loc = self.loc.broadcast_to(batch_shape) if self.loc.shape != tuple(batch_shape) else self.loc
        scale = self.scale.broadcast_to(batch_shape) if self.scale.shape != tuple(batch_shape) else self.scale
        return Normal(loc, scale)

    def rsample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        shape = self.shape(sample_shape)
        eps = Tensor(get_rng().standard_normal(shape))
        return self.loc + self.scale * eps

    def sample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        return self.rsample(sample_shape).detach()

    def log_prob(self, value: ArrayOrTensor) -> Tensor:
        value = _as_tensor(value)
        var = self.scale ** 2
        return -((value - self.loc) ** 2) / (2.0 * var) - self.scale.log() - 0.5 * _LOG_2PI

    def entropy(self) -> Tensor:
        return self.scale.log() + 0.5 * (1.0 + _LOG_2PI)

    def cdf(self, value: ArrayOrTensor) -> Tensor:
        value = _as_tensor(value)
        return 0.5 * (1.0 + ((value - self.loc) / (self.scale * math.sqrt(2.0))).erf())

    @property
    def mean(self) -> Tensor:
        return self.loc

    @property
    def variance(self) -> Tensor:
        return self.scale ** 2

    @property
    def stddev(self) -> Tensor:
        return self.scale


class LogNormal(Distribution):
    """Distribution of ``exp(X)`` with ``X ~ N(loc, scale^2)``."""

    has_rsample = True

    def __init__(self, loc: ArrayOrTensor, scale: ArrayOrTensor) -> None:
        self.base = Normal(loc, scale)
        super().__init__(self.base.batch_shape)

    @property
    def loc(self) -> Tensor:
        return self.base.loc

    @property
    def scale(self) -> Tensor:
        return self.base.scale

    def expand(self, batch_shape):
        return LogNormal(self.loc.broadcast_to(batch_shape), self.scale.broadcast_to(batch_shape))

    def rsample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        return self.base.rsample(sample_shape).exp()

    def sample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        return self.rsample(sample_shape).detach()

    def log_prob(self, value: ArrayOrTensor) -> Tensor:
        value = _as_tensor(value)
        return self.base.log_prob(value.log()) - value.log()

    @property
    def mean(self) -> Tensor:
        return (self.loc + 0.5 * self.scale ** 2).exp()

    @property
    def variance(self) -> Tensor:
        return ((self.scale ** 2).exp() - 1.0) * (2.0 * self.loc + self.scale ** 2).exp()


class Uniform(Distribution):
    """Continuous uniform on ``[low, high)``."""

    has_rsample = True

    def __init__(self, low: ArrayOrTensor, high: ArrayOrTensor) -> None:
        self.low = _as_tensor(low)
        self.high = _as_tensor(high)
        if np.any(self.high.data <= self.low.data):
            raise ValueError("Uniform requires high > low")
        super().__init__(_broadcast_shapes(self.low.shape, self.high.shape))

    def expand(self, batch_shape):
        return Uniform(self.low.broadcast_to(batch_shape), self.high.broadcast_to(batch_shape))

    def rsample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        shape = self.shape(sample_shape)
        u = Tensor(get_rng().random(shape))
        return self.low + (self.high - self.low) * u

    def sample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        return self.rsample(sample_shape).detach()

    def log_prob(self, value: ArrayOrTensor) -> Tensor:
        value = _as_tensor(value)
        inside = (value.data >= self.low.data) & (value.data < self.high.data)
        log_density = -(self.high - self.low).log()
        log_density = log_density + Tensor(np.where(inside, 0.0, -np.inf))
        return log_density.broadcast_to(_broadcast_shapes(value.shape, self.batch_shape))

    def entropy(self) -> Tensor:
        return (self.high - self.low).log()

    @property
    def mean(self) -> Tensor:
        return 0.5 * (self.low + self.high)

    @property
    def variance(self) -> Tensor:
        return (self.high - self.low) ** 2 / 12.0


class Delta(Distribution):
    """Point mass at ``v`` (used by MAP / AutoDelta guides)."""

    has_rsample = True

    def __init__(self, v: ArrayOrTensor, log_density: ArrayOrTensor = 0.0,
                 event_dim: int = 0) -> None:
        self.v = _as_tensor(v)
        self.log_density = _as_tensor(log_density)
        batch_shape = self.v.shape[:self.v.ndim - event_dim] if event_dim else self.v.shape
        event_shape = self.v.shape[self.v.ndim - event_dim:] if event_dim else ()
        super().__init__(batch_shape, event_shape)
        self.event_dim = event_dim

    def expand(self, batch_shape):
        return Delta(self.v.broadcast_to(tuple(batch_shape) + self.event_shape),
                     event_dim=self.event_dim)

    def rsample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        if sample_shape:
            return self.v.broadcast_to(tuple(sample_shape) + self.v.shape)
        return self.v

    def sample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        return self.rsample(sample_shape).detach()

    def log_prob(self, value: ArrayOrTensor) -> Tensor:
        value = _as_tensor(value)
        match = np.isclose(value.data, np.broadcast_to(self.v.data, value.shape)).astype(np.float64)
        log_prob = Tensor(np.where(match, 0.0, -np.inf)) + self.log_density
        if self.event_dim:
            log_prob = sum_rightmost(log_prob, self.event_dim)
        return log_prob

    def entropy(self) -> Tensor:
        return Tensor(np.zeros(self.batch_shape))

    @property
    def mean(self) -> Tensor:
        return self.v

    @property
    def variance(self) -> Tensor:
        return Tensor(np.zeros(self.v.shape))


class Categorical(Distribution):
    """Categorical over ``K`` classes, parameterized by logits or probs."""

    has_rsample = False

    def __init__(self, logits: Optional[ArrayOrTensor] = None,
                 probs: Optional[ArrayOrTensor] = None) -> None:
        if (logits is None) == (probs is None):
            raise ValueError("provide exactly one of logits or probs")
        if logits is not None:
            self.logits = _as_tensor(logits)
        else:
            probs_t = _as_tensor(probs)
            self.logits = probs_t.log() - probs_t.sum(axis=-1, keepdims=True).log()
        super().__init__(self.logits.shape[:-1])
        self.num_classes = self.logits.shape[-1]

    @property
    def probs(self) -> Tensor:
        return F.softmax(self.logits, axis=-1)

    def expand(self, batch_shape):
        return Categorical(logits=self.logits.broadcast_to(tuple(batch_shape) + (self.num_classes,)))

    def sample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        probs = self.probs.data
        shape = tuple(sample_shape) + self.batch_shape
        flat_probs = np.broadcast_to(probs, shape + (self.num_classes,)).reshape(-1, self.num_classes)
        u = get_rng().random(flat_probs.shape[0])
        cdf = np.cumsum(flat_probs, axis=-1)
        cdf /= cdf[:, -1:]
        idx = (u[:, None] > cdf).sum(axis=-1)
        return Tensor(idx.reshape(shape))

    def log_prob(self, value: ArrayOrTensor) -> Tensor:
        value_arr = np.asarray(value.data if isinstance(value, Tensor) else value, dtype=np.int64)
        log_probs = F.log_softmax(self.logits, axis=-1)
        oh = F.one_hot(value_arr, self.num_classes)
        return (log_probs * Tensor(oh)).sum(axis=-1)

    def entropy(self) -> Tensor:
        log_probs = F.log_softmax(self.logits, axis=-1)
        return -(log_probs.exp() * log_probs).sum(axis=-1)

    @property
    def mean(self) -> Tensor:
        raise NotImplementedError("Categorical has no mean")


class Bernoulli(Distribution):
    """Bernoulli over {0, 1}, parameterized by logits or probs."""

    has_rsample = False

    def __init__(self, logits: Optional[ArrayOrTensor] = None,
                 probs: Optional[ArrayOrTensor] = None) -> None:
        if (logits is None) == (probs is None):
            raise ValueError("provide exactly one of logits or probs")
        if logits is not None:
            self.logits = _as_tensor(logits)
        else:
            p = _as_tensor(probs)
            self.logits = p.log() - (1.0 - p).log()
        super().__init__(self.logits.shape)

    @property
    def probs(self) -> Tensor:
        return self.logits.sigmoid()

    def expand(self, batch_shape):
        return Bernoulli(logits=self.logits.broadcast_to(batch_shape))

    def sample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        shape = self.shape(sample_shape)
        u = get_rng().random(shape)
        return Tensor((u < np.broadcast_to(self.probs.data, shape)).astype(np.float64))

    def log_prob(self, value: ArrayOrTensor) -> Tensor:
        value = _as_tensor(value)
        return -F.binary_cross_entropy_with_logits(self.logits + value * 0.0, value, reduction="none")

    def entropy(self) -> Tensor:
        p = self.probs
        return -(p * p.log() + (1.0 - p) * (1.0 - p).log())

    @property
    def mean(self) -> Tensor:
        return self.probs

    @property
    def variance(self) -> Tensor:
        p = self.probs
        return p * (1.0 - p)


class Poisson(Distribution):
    """Poisson with rate ``rate`` (included to mirror the paper's note that new
    likelihoods based on existing distributions are easy to add)."""

    has_rsample = False

    def __init__(self, rate: ArrayOrTensor) -> None:
        self.rate = _as_tensor(rate)
        super().__init__(self.rate.shape)

    def expand(self, batch_shape):
        return Poisson(self.rate.broadcast_to(batch_shape))

    def sample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        shape = self.shape(sample_shape)
        return Tensor(get_rng().poisson(np.broadcast_to(self.rate.data, shape)).astype(np.float64))

    def log_prob(self, value: ArrayOrTensor) -> Tensor:
        value = _as_tensor(value)
        log_factorial = Tensor(_sp_special.gammaln(value.data + 1.0))
        return value * self.rate.log() - self.rate - log_factorial

    @property
    def mean(self) -> Tensor:
        return self.rate

    @property
    def variance(self) -> Tensor:
        return self.rate


class Gamma(Distribution):
    """Gamma distribution (shape/rate parameterization); sampling is not
    reparameterized and is provided for prior specification only."""

    has_rsample = False

    def __init__(self, concentration: ArrayOrTensor, rate: ArrayOrTensor) -> None:
        self.concentration = _as_tensor(concentration)
        self.rate = _as_tensor(rate)
        super().__init__(_broadcast_shapes(self.concentration.shape, self.rate.shape))

    def expand(self, batch_shape):
        return Gamma(self.concentration.broadcast_to(batch_shape), self.rate.broadcast_to(batch_shape))

    def sample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        shape = self.shape(sample_shape)
        k = np.broadcast_to(self.concentration.data, shape)
        theta = 1.0 / np.broadcast_to(self.rate.data, shape)
        return Tensor(get_rng().gamma(k, theta))

    def log_prob(self, value: ArrayOrTensor) -> Tensor:
        value = _as_tensor(value)
        lgamma = Tensor(_sp_special.gammaln(np.broadcast_to(self.concentration.data, self.batch_shape)))
        return (self.concentration * self.rate.log() + (self.concentration - 1.0) * value.log()
                - self.rate * value - lgamma)

    @property
    def mean(self) -> Tensor:
        return self.concentration / self.rate

    @property
    def variance(self) -> Tensor:
        return self.concentration / self.rate ** 2


class Independent(Distribution):
    """Reinterpret the rightmost batch dims of a base distribution as event dims."""

    def __init__(self, base_dist: Distribution, reinterpreted_batch_ndims: int) -> None:
        if reinterpreted_batch_ndims > len(base_dist.batch_shape):
            raise ValueError("reinterpreted_batch_ndims exceeds the base batch rank")
        self.base_dist = base_dist
        self.reinterpreted_batch_ndims = reinterpreted_batch_ndims
        split = len(base_dist.batch_shape) - reinterpreted_batch_ndims
        super().__init__(base_dist.batch_shape[:split],
                         base_dist.batch_shape[split:] + base_dist.event_shape)

    @property
    def has_rsample(self) -> bool:  # type: ignore[override]
        return self.base_dist.has_rsample

    def expand(self, batch_shape):
        new_base = self.base_dist.expand(tuple(batch_shape) + self.base_dist.batch_shape[len(self.base_dist.batch_shape) - self.reinterpreted_batch_ndims:])
        return Independent(new_base, self.reinterpreted_batch_ndims)

    def rsample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        return self.base_dist.rsample(sample_shape)

    def sample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        return self.base_dist.sample(sample_shape)

    def log_prob(self, value: ArrayOrTensor) -> Tensor:
        return sum_rightmost(self.base_dist.log_prob(value), self.reinterpreted_batch_ndims)

    def entropy(self) -> Tensor:
        return sum_rightmost(self.base_dist.entropy(), self.reinterpreted_batch_ndims)

    @property
    def mean(self) -> Tensor:
        return self.base_dist.mean

    @property
    def variance(self) -> Tensor:
        return self.base_dist.variance

    def to_event(self, reinterpreted_batch_ndims: Optional[int] = None) -> "Distribution":
        if reinterpreted_batch_ndims is None:
            reinterpreted_batch_ndims = len(self.batch_shape)
        if reinterpreted_batch_ndims == 0:
            return self
        return Independent(self.base_dist, self.reinterpreted_batch_ndims + reinterpreted_batch_ndims)


# ------------------------------------------------------- low-rank multivariate
def _matrix_inverse(a: Tensor) -> Tensor:
    """Differentiable inverse of a small square matrix."""
    inv = np.linalg.inv(a.data)
    out = Tensor(inv, requires_grad=a.requires_grad)
    if out.requires_grad:
        out._prev = (a,)
        out._op = "inverse"

        def _backward():
            a._accumulate(-inv.T @ out.grad @ inv.T)

        out._backward = _backward
    return out


def _logdet(a: Tensor) -> Tensor:
    """Differentiable log-determinant of a positive-definite matrix."""
    sign, logabsdet = np.linalg.slogdet(a.data)
    if sign <= 0:
        raise ValueError("matrix must be positive definite for logdet")
    out = Tensor(np.asarray(logabsdet), requires_grad=a.requires_grad)
    if out.requires_grad:
        inv = np.linalg.inv(a.data)
        out._prev = (a,)
        out._op = "logdet"

        def _backward():
            a._accumulate(out.grad * inv.T)

        out._backward = _backward
    return out


class LowRankMultivariateNormal(Distribution):
    """Multivariate normal with covariance ``cov_factor cov_factor^T + diag(cov_diag)``.

    Used by the last-layer low-rank guide in the ResNet experiment (Table 1).
    Only a single event dimension (vector-valued) is supported.
    """

    has_rsample = True

    def __init__(self, loc: ArrayOrTensor, cov_factor: ArrayOrTensor, cov_diag: ArrayOrTensor) -> None:
        self.loc = _as_tensor(loc)
        self.cov_factor = _as_tensor(cov_factor)
        self.cov_diag = _as_tensor(cov_diag)
        if self.loc.ndim != 1 or self.cov_factor.ndim != 2 or self.cov_diag.ndim != 1:
            raise ValueError("LowRankMultivariateNormal expects 1-D loc/cov_diag and 2-D cov_factor")
        d, k = self.cov_factor.shape
        if self.loc.shape[0] != d or self.cov_diag.shape[0] != d:
            raise ValueError("inconsistent dimensions for LowRankMultivariateNormal")
        self.rank = k
        super().__init__((), (d,))

    @property
    def event_dim(self) -> int:
        return 1

    def rsample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        d = self.event_shape[0]
        shape_w = tuple(sample_shape) + (self.rank,)
        shape_d = tuple(sample_shape) + (d,)
        eps_w = Tensor(get_rng().standard_normal(shape_w))
        eps_d = Tensor(get_rng().standard_normal(shape_d))
        return self.loc + eps_w @ self.cov_factor.T + self.cov_diag.sqrt() * eps_d

    def sample(self, sample_shape: Tuple[int, ...] = ()) -> Tensor:
        return self.rsample(sample_shape).detach()

    def log_prob(self, value: ArrayOrTensor) -> Tensor:
        value = _as_tensor(value)
        d = self.event_shape[0]
        diff = value - self.loc  # (..., d)
        w = self.cov_factor  # (d, k)
        d_inv = 1.0 / self.cov_diag  # (d,)
        # capacitance matrix M = I + W^T D^-1 W  (k x k)
        m = Tensor(np.eye(self.rank)) + w.T @ (w * d_inv.reshape(d, 1))
        m_inv = _matrix_inverse(m)
        # Woodbury: Sigma^-1 = D^-1 - D^-1 W M^-1 W^T D^-1
        diff_dinv = diff * d_inv  # (..., d)
        quad_diag = (diff * diff_dinv).sum(axis=-1)
        proj = diff_dinv @ w  # (..., k)
        quad_lr = ((proj @ m_inv) * proj).sum(axis=-1)
        mahalanobis = quad_diag - quad_lr
        # determinant lemma: log|Sigma| = log|M| + sum log D
        logdet = _logdet(m) + self.cov_diag.log().sum()
        return -0.5 * (mahalanobis + logdet + d * _LOG_2PI)

    def entropy(self) -> Tensor:
        d = self.event_shape[0]
        w = self.cov_factor
        d_inv = 1.0 / self.cov_diag
        m = Tensor(np.eye(self.rank)) + w.T @ (w * d_inv.reshape(d, 1))
        logdet = _logdet(m) + self.cov_diag.log().sum()
        return 0.5 * (d * (1.0 + _LOG_2PI) + logdet)

    @property
    def mean(self) -> Tensor:
        return self.loc

    @property
    def variance(self) -> Tensor:
        return (self.cov_factor ** 2).sum(axis=-1) + self.cov_diag


# --------------------------------------------------------------- KL divergence
_KL_REGISTRY: Dict[Tuple[Type, Type], callable] = {}


def register_kl(type_p: Type, type_q: Type):
    """Decorator registering an analytic KL divergence ``KL(p || q)``."""

    def decorator(fn):
        _KL_REGISTRY[(type_p, type_q)] = fn
        return fn

    return decorator


def kl_divergence(p: Distribution, q: Distribution) -> Tensor:
    """Analytic ``KL(p || q)``; raises ``NotImplementedError`` if unknown."""
    for (tp, tq), fn in _KL_REGISTRY.items():
        if isinstance(p, tp) and isinstance(q, tq):
            return fn(p, q)
    raise NotImplementedError(f"no KL registered for ({type(p).__name__}, {type(q).__name__})")


@register_kl(Normal, Normal)
def _kl_normal_normal(p: Normal, q: Normal) -> Tensor:
    var_ratio = (p.scale / q.scale) ** 2
    t1 = ((p.loc - q.loc) / q.scale) ** 2
    return 0.5 * (var_ratio + t1 - 1.0 - var_ratio.log())


@register_kl(Delta, Distribution)
def _kl_delta_any(p: Delta, q: Distribution) -> Tensor:
    # KL(delta_v || q) up to the (infinite) self-entropy constant; this is the
    # convention Pyro uses so that AutoDelta yields MAP estimation.
    return -q.log_prob(p.v) + p.log_density


@register_kl(Independent, Independent)
def _kl_independent_independent(p: Independent, q: Independent) -> Tensor:
    if p.reinterpreted_batch_ndims != q.reinterpreted_batch_ndims:
        raise NotImplementedError("mismatched reinterpreted_batch_ndims")
    return sum_rightmost(kl_divergence(p.base_dist, q.base_dist), p.reinterpreted_batch_ndims)


@register_kl(Independent, Normal)
def _kl_independent_normal(p: Independent, q: Normal) -> Tensor:
    return sum_rightmost(kl_divergence(p.base_dist, q), p.reinterpreted_batch_ndims)


@register_kl(Normal, Independent)
def _kl_normal_independent(p: Normal, q: Independent) -> Tensor:
    return sum_rightmost(kl_divergence(p, q.base_dist), q.reinterpreted_batch_ndims)
