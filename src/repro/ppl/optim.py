"""Pyro-style optimizer wrappers.

Pyro optimizers are constructed from a dict of hyper-parameters
(``pyro.optim.Adam({"lr": 1e-3})``) and are handed *parameters to update* at
each SVI step rather than at construction time, because guide parameters are
created lazily.  These wrappers provide the same behaviour on top of
:mod:`repro.nn.optim`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Type

from ..nn import optim as nn_optim
from ..nn.tensor import Tensor

__all__ = ["PyroOptim", "Adam", "SGD", "ExponentialLR"]


class PyroOptim:
    """Wraps a :class:`repro.nn.optim.Optimizer` class for lazily-created params."""

    def __init__(self, optim_constructor: Type[nn_optim.Optimizer], optim_args: Dict) -> None:
        self.optim_constructor = optim_constructor
        self.optim_args = dict(optim_args)
        self._optimizer: Optional[nn_optim.Optimizer] = None
        self._known_params: set = set()

    def _ensure_params(self, params: Iterable[Tensor]) -> List[Tensor]:
        params = list(params)
        new = [p for p in params if id(p) not in self._known_params]
        if new:
            if self._optimizer is None:
                self._optimizer = self.optim_constructor(new, **self.optim_args)
            else:
                self._optimizer.add_param_group({"params": new})
            self._known_params.update(id(p) for p in new)
        return params

    def __call__(self, params: Iterable[Tensor]) -> None:
        """Take one optimization step over ``params`` (creating state lazily)."""
        self._ensure_params(params)
        if self._optimizer is not None:
            self._optimizer.step()

    def set_lr(self, lr: float) -> None:
        self.optim_args["lr"] = lr
        if self._optimizer is not None:
            self._optimizer.set_lr(lr)

    def get_lr(self) -> float:
        if self._optimizer is not None:
            return self._optimizer.get_lr()
        return self.optim_args.get("lr", 1e-3)


def Adam(optim_args: Dict) -> PyroOptim:
    """``pyro.optim.Adam``-style constructor: ``Adam({"lr": 1e-3})``."""
    return PyroOptim(nn_optim.Adam, optim_args)


def SGD(optim_args: Dict) -> PyroOptim:
    """``pyro.optim.SGD``-style constructor: ``SGD({"lr": 1e-2})``."""
    return PyroOptim(nn_optim.SGD, optim_args)


class ExponentialLR:
    """Scheduled optimizer: multiplies the learning rate by ``gamma`` per epoch.

    Mirrors ``pyro.optim.ExponentialLR({"optimizer": ..., "optim_args": ...,
    "gamma": ...})`` closely enough for the experiments in this repo.
    """

    def __init__(self, config: Dict) -> None:
        optimizer = config["optimizer"]
        optim_args = config["optim_args"]
        self.gamma = config.get("gamma", 0.9)
        self._wrapped = PyroOptim(optimizer, optim_args)
        self._base_lr = optim_args.get("lr", 1e-3)
        self._epoch = 0

    def __call__(self, params: Iterable[Tensor]) -> None:
        self._wrapped(params)

    def step(self) -> None:
        """Advance the schedule by one epoch."""
        self._epoch += 1
        self._wrapped.set_lr(self._base_lr * self.gamma ** self._epoch)

    def get_lr(self) -> float:
        return self._wrapped.get_lr()
