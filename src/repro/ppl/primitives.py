"""Probabilistic-programming primitives: ``sample``, ``param``, ``plate``.

These are the user-facing statements of the Pyro substitute.  When no effect
handler is active they behave like plain sampling / parameter lookup; under
handlers (trace, replay, condition, ...) their behaviour is transformed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import numpy as np

from ..nn.tensor import Tensor
from . import constraints
from .distributions import Delta, Distribution
from .params import get_param_store
from .poutine.runtime import Messenger, am_i_wrapped, apply_stack, new_message

__all__ = ["sample", "param", "deterministic", "plate", "factor"]


def sample(name: str, fn: Distribution, obs: Optional[Any] = None,
           infer: Optional[Dict] = None) -> Tensor:
    """Sample (or observe) a random variable named ``name`` from ``fn``."""
    if not am_i_wrapped():
        if obs is not None:
            return obs if isinstance(obs, Tensor) else Tensor(np.asarray(obs))
        return fn.rsample() if getattr(fn, "has_rsample", False) else fn.sample()
    obs_value = None
    if obs is not None:
        obs_value = obs if isinstance(obs, Tensor) else Tensor(np.asarray(obs))
    msg = new_message("sample", name, fn, value=obs_value, is_observed=obs is not None,
                      infer=infer)
    apply_stack(msg)
    return msg["value"]


def param(name: str, init_value: Optional[Any] = None,
          constraint: Optional[constraints.Constraint] = None) -> Tensor:
    """Declare / fetch a learnable parameter living in the global param store."""
    init_arr = None
    if init_value is not None:
        init_arr = init_value.data if isinstance(init_value, Tensor) else np.asarray(init_value, dtype=np.float64)
    if not am_i_wrapped():
        store = get_param_store()
        if name in store:
            return store.get_param(name)
        if init_arr is None:
            raise ValueError(f"param {name!r} has no initial value and is not in the store")
        return store.setdefault(name, init_arr, constraint)
    msg = new_message("param", name, None, args=(init_arr, constraint))
    apply_stack(msg)
    return msg["value"]


def deterministic(name: str, value: Tensor) -> Tensor:
    """Record a deterministic function of other sites (a Delta sample site)."""
    value_t = value if isinstance(value, Tensor) else Tensor(np.asarray(value))
    return sample(name, Delta(value_t, event_dim=value_t.ndim), obs=value_t)


def factor(name: str, log_factor: Tensor) -> None:
    """Add an arbitrary log-density term to the model (a unit Delta site)."""
    log_t = log_factor if isinstance(log_factor, Tensor) else Tensor(np.asarray(log_factor))
    sample(name, Delta(Tensor(np.zeros(log_t.shape)), log_density=log_t, event_dim=log_t.ndim),
           obs=Tensor(np.zeros(log_t.shape)))


class plate(Messenger):
    """Conditional-independence context that rescales densities under subsampling.

    ``with plate("data", size=N, subsample_size=B):`` multiplies the
    log-density of every sample statement inside by ``N / B`` — the mechanism
    the TyXe likelihoods use to weight mini-batch log-likelihoods against the
    full-dataset KL term.

    Under the vectorized-particles execution mode the values inside the plate
    carry extra *leading* sample dimensions (particles), while the plate's
    batch dimension stays to their right; callers computing ``subsample_size``
    from a value's shape must therefore skip ``repro.nn.sample_ndim()``
    leading axes (as ``repro.core.likelihoods`` does) so the ``N / B``
    rescaling is unaffected by how many particles run in parallel.
    """

    def __init__(self, name: str, size: int, subsample_size: Optional[int] = None,
                 dim: Optional[int] = None) -> None:
        self.name = name
        self.size = int(size)
        self.subsample_size = int(subsample_size) if subsample_size is not None else self.size
        self.dim = dim
        if self.subsample_size <= 0 or self.size <= 0:
            raise ValueError("plate size and subsample_size must be positive")

    @property
    def scale(self) -> float:
        return self.size / self.subsample_size

    def process_message(self, msg) -> None:
        if msg["type"] == "sample":
            msg["scale"] = msg["scale"] * self.scale
            msg.setdefault("cond_indep_stack", []).append((self.name, self.size, self.subsample_size, self.dim))
