"""Automatic guide construction, mirroring ``pyro.infer.autoguide``.

An :class:`AutoGuide` inspects a model's trace to discover its latent sample
sites and then defines a variational family over them, creating its
variational parameters in the global parameter store.  The TyXe-style guide
(:class:`repro.core.guides.AutoNormal`) extends :class:`AutoNormal` here with
the BNN-specific conveniences described in the paper (pretrained-mean
initialization, frozen means, clipped scales).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ...nn.tensor import Tensor
from .. import constraints
from ..distributions import (Delta, Distribution, LowRankMultivariateNormal,
                             Normal)
from ..params import get_param_store
from ..poutine import block, trace
from ..primitives import param, sample
from ..rng import get_rng

__all__ = [
    "AutoGuide",
    "AutoNormal",
    "AutoDelta",
    "AutoLowRankMultivariateNormal",
    "init_to_median",
    "init_to_sample",
    "init_to_value",
    "init_to_mean",
]


# ------------------------------------------------------------ init strategies
def init_to_median(site: Dict, num_samples: int = 15) -> np.ndarray:
    """Initialize to the (empirical) median of the prior."""
    fn = site["fn"]
    samples = np.stack([fn.sample().data for _ in range(num_samples)])
    return np.median(samples, axis=0)


def init_to_mean(site: Dict) -> np.ndarray:
    """Initialize to the prior mean, falling back to a sample."""
    try:
        return np.array(site["fn"].mean.data, copy=True)
    except NotImplementedError:
        return init_to_sample(site)


def init_to_sample(site: Dict) -> np.ndarray:
    """Initialize to a single sample from the prior."""
    return np.array(site["fn"].sample().data, copy=True)


def init_to_value(values: Dict[str, np.ndarray], fallback: Callable = init_to_median) -> Callable:
    """Initialize named sites to given values, falling back otherwise."""

    def _init(site: Dict) -> np.ndarray:
        if site["name"] in values:
            value = values[site["name"]]
            return np.array(value.data if isinstance(value, Tensor) else value, copy=True, dtype=np.float64)
        return fallback(site)

    return _init


class AutoGuide:
    """Base class for automatic guides over a model's latent sample sites."""

    def __init__(self, model: Callable, prefix: str = "auto") -> None:
        self.model = model
        self.prefix = prefix
        self.prototype_trace = None
        self._latent_sites: "OrderedDict[str, Dict]" = OrderedDict()

    # ---------------------------------------------------------------- set-up
    def _setup_prototype(self, *args, **kwargs) -> None:
        blocked_model = block(self.model, hide_fn=lambda m: m["type"] == "param")
        # the outer block hides the prototype run from any handlers that are
        # already active (e.g. the guide trace recorded during an SVI step)
        with block():
            self.prototype_trace = trace(blocked_model).get_trace(*args, **kwargs)
        self._latent_sites = OrderedDict()
        for name, site in self.prototype_trace.nodes.items():
            if site.get("type") == "sample" and not site.get("is_observed"):
                self._latent_sites[name] = site

    def _maybe_setup(self, *args, **kwargs) -> None:
        if self.prototype_trace is None:
            self._setup_prototype(*args, **kwargs)

    @property
    def latent_names(self) -> Tuple[str, ...]:
        return tuple(self._latent_sites)

    def _site_param_name(self, name: str, kind: str) -> str:
        return f"{self.prefix}.{kind}.{name}"

    # -------------------------------------------------------------- interface
    def __call__(self, *args, **kwargs) -> Dict[str, Tensor]:
        raise NotImplementedError

    def median(self, *args, **kwargs) -> Dict[str, np.ndarray]:
        """Point estimates (posterior medians) for all latent sites."""
        raise NotImplementedError

    def get_distribution(self, name: str) -> Distribution:
        """The current variational distribution of one latent site."""
        raise NotImplementedError

    def get_detached_distributions(self, names: Optional[Tuple[str, ...]] = None) -> Dict[str, Distribution]:
        """Return {site: distribution} with parameters detached from autograd.

        This is the hook variational continual learning uses to turn the
        current posterior into the next task's prior (paper Listing 6).
        """
        names = names if names is not None else self.latent_names
        out: Dict[str, Distribution] = OrderedDict()
        for name in names:
            dist = self.get_distribution(name)
            out[name] = _detach_distribution(dist)
        return out


def _detach_distribution(dist: Distribution) -> Distribution:
    if isinstance(dist, Normal):
        return Normal(dist.loc.detach(), dist.scale.detach())
    if isinstance(dist, Delta):
        return Delta(dist.v.detach(), event_dim=dist.event_dim)
    from ..distributions import Independent

    if isinstance(dist, Independent):
        return Independent(_detach_distribution(dist.base_dist), dist.reinterpreted_batch_ndims)
    if isinstance(dist, LowRankMultivariateNormal):
        return LowRankMultivariateNormal(dist.loc.detach(), dist.cov_factor.detach(), dist.cov_diag.detach())
    raise NotImplementedError(f"cannot detach distribution of type {type(dist).__name__}")


class AutoNormal(AutoGuide):
    """Fully factorized Gaussian guide: one ``Normal(loc, scale)`` per site.

    Samples each unobserved site from a diagonal Normal directly (rather than
    through a joint auxiliary variable), which is what makes it compatible
    with local reparameterization and closed-form KL — the motivation given
    in the paper for TyXe's own AutoNormal.
    """

    def __init__(self, model: Callable, init_loc_fn: Callable = init_to_median,
                 init_scale: float = 0.1, prefix: str = "auto") -> None:
        super().__init__(model, prefix=prefix)
        self.init_loc_fn = init_loc_fn
        self.init_scale = init_scale

    def _loc_scale(self, name: str, site: Dict) -> Tuple[Tensor, Tensor]:
        init_loc = self.init_loc_fn(site)
        shape = np.shape(init_loc)
        loc = param(self._site_param_name(name, "loc"), np.asarray(init_loc, dtype=np.float64))
        scale = param(self._site_param_name(name, "scale"),
                      np.full(shape, self.init_scale, dtype=np.float64),
                      constraint=constraints.positive)
        return loc, scale

    def __call__(self, *args, **kwargs) -> Dict[str, Tensor]:
        self._maybe_setup(*args, **kwargs)
        result: Dict[str, Tensor] = OrderedDict()
        for name, site in self._latent_sites.items():
            loc, scale = self._loc_scale(name, site)
            event_dim = loc.ndim
            result[name] = sample(name, Normal(loc, scale).to_event(event_dim),
                                  infer={"is_auxiliary": False})
        return result

    def get_distribution(self, name: str) -> Distribution:
        store = get_param_store()
        loc = store.get_param(self._site_param_name(name, "loc"))
        scale = store.get_param(self._site_param_name(name, "scale"))
        return Normal(loc, scale).to_event(loc.ndim)

    def median(self, *args, **kwargs) -> Dict[str, np.ndarray]:
        self._maybe_setup(*args, **kwargs)
        store = get_param_store()
        return {name: store.get_param(self._site_param_name(name, "loc")).data.copy()
                for name in self._latent_sites}


class AutoDelta(AutoGuide):
    """Point-estimate (MAP) guide: a Delta distribution per latent site."""

    def __init__(self, model: Callable, init_loc_fn: Callable = init_to_median,
                 prefix: str = "auto") -> None:
        super().__init__(model, prefix=prefix)
        self.init_loc_fn = init_loc_fn

    def __call__(self, *args, **kwargs) -> Dict[str, Tensor]:
        self._maybe_setup(*args, **kwargs)
        result: Dict[str, Tensor] = OrderedDict()
        for name, site in self._latent_sites.items():
            loc = param(self._site_param_name(name, "loc"),
                        np.asarray(self.init_loc_fn(site), dtype=np.float64))
            result[name] = sample(name, Delta(loc, event_dim=loc.ndim))
        return result

    def get_distribution(self, name: str) -> Distribution:
        store = get_param_store()
        loc = store.get_param(self._site_param_name(name, "loc"))
        return Delta(loc, event_dim=loc.ndim)

    def median(self, *args, **kwargs) -> Dict[str, np.ndarray]:
        self._maybe_setup(*args, **kwargs)
        store = get_param_store()
        return {name: store.get_param(self._site_param_name(name, "loc")).data.copy()
                for name in self._latent_sites}


class AutoLowRankMultivariateNormal(AutoGuide):
    """Joint low-rank-plus-diagonal Gaussian over all latent sites.

    All latents are flattened and concatenated into one vector with a
    ``LowRankMultivariateNormal`` posterior; per-site values are emitted as
    Delta sites sliced out of the joint sample (so that replaying the model
    against the guide trace works exactly as for the factorized guides).
    """

    def __init__(self, model: Callable, init_loc_fn: Callable = init_to_median,
                 init_scale: float = 0.1, rank: int = 10, prefix: str = "auto_lowrank") -> None:
        super().__init__(model, prefix=prefix)
        self.init_loc_fn = init_loc_fn
        self.init_scale = init_scale
        self.rank = rank
        self._site_slices: "OrderedDict[str, Tuple[slice, Tuple[int, ...]]]" = OrderedDict()
        self._total_dim = 0

    def _setup_prototype(self, *args, **kwargs) -> None:
        super()._setup_prototype(*args, **kwargs)
        offset = 0
        self._site_slices = OrderedDict()
        for name, site in self._latent_sites.items():
            shape = site["value"].shape
            size = int(np.prod(shape)) if shape else 1
            self._site_slices[name] = (slice(offset, offset + size), shape)
            offset += size
        self._total_dim = offset

    def _joint_params(self) -> Tuple[Tensor, Tensor, Tensor]:
        init_loc = np.zeros(self._total_dim)
        for name, site in self._latent_sites.items():
            sl, shape = self._site_slices[name]
            init_loc[sl] = np.asarray(self.init_loc_fn(site), dtype=np.float64).reshape(-1)
        loc = param(f"{self.prefix}.loc", init_loc)
        cov_factor = param(f"{self.prefix}.cov_factor",
                           get_rng().standard_normal((self._total_dim, self.rank)) * self.init_scale * 0.1)
        cov_diag = param(f"{self.prefix}.cov_diag",
                         np.full(self._total_dim, self.init_scale ** 2),
                         constraint=constraints.positive)
        return loc, cov_factor, cov_diag

    def __call__(self, *args, **kwargs) -> Dict[str, Tensor]:
        self._maybe_setup(*args, **kwargs)
        loc, cov_factor, cov_diag = self._joint_params()
        joint = sample(f"_{self.prefix}_latent",
                       LowRankMultivariateNormal(loc, cov_factor, cov_diag),
                       infer={"is_auxiliary": True})
        result: Dict[str, Tensor] = OrderedDict()
        for name in self._latent_sites:
            sl, shape = self._site_slices[name]
            value = joint[sl].reshape(shape) if shape else joint[sl].reshape(())
            result[name] = sample(name, Delta(value, event_dim=len(shape)))
        return result

    def get_distribution(self, name: str) -> Distribution:
        store = get_param_store()
        loc = store.get_param(f"{self.prefix}.loc")
        cov_factor = store.get_param(f"{self.prefix}.cov_factor")
        cov_diag = store.get_param(f"{self.prefix}.cov_diag")
        sl, shape = self._site_slices[name]
        marginal_scale = ((cov_factor ** 2).sum(axis=-1) + cov_diag).sqrt()
        return Normal(loc[sl].reshape(shape), marginal_scale[sl].reshape(shape)).to_event(len(shape))

    def median(self, *args, **kwargs) -> Dict[str, np.ndarray]:
        self._maybe_setup(*args, **kwargs)
        store = get_param_store()
        loc = store.get_param(f"{self.prefix}.loc").data
        return {name: loc[sl].reshape(shape).copy() for name, (sl, shape) in self._site_slices.items()}
