"""Automatic guide construction, mirroring ``pyro.infer.autoguide``.

An :class:`AutoGuide` inspects a model's trace to discover its latent sample
sites and then defines a variational family over them, creating its
variational parameters in the global parameter store.  The TyXe-style guide
(:class:`repro.core.guides.AutoNormal`) extends :class:`AutoNormal` here with
the BNN-specific conveniences described in the paper (pretrained-mean
initialization, frozen means, clipped scales).
"""
# repro: noqa[R003] -- guide setup runs once per inference, not per step;
# eager materialization of init values here is deliberate.

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ...nn.tensor import Tensor, stack as _stack_tensors
from .. import constraints
from ..distributions import (Delta, Distribution, LowRankMultivariateNormal,
                             Normal)
from ..params import get_param_store
from ..poutine import block, trace
from ..primitives import param, sample
from ..rng import get_rng

__all__ = [
    "AutoGuide",
    "AutoNormal",
    "AutoDelta",
    "AutoLowRankMultivariateNormal",
    "init_to_median",
    "init_to_sample",
    "init_to_value",
    "init_to_mean",
]


# ------------------------------------------------------------ init strategies
def init_to_median(site: Dict, num_samples: int = 15) -> np.ndarray:
    """Initialize to the (empirical) median of the prior."""
    fn = site["fn"]
    samples = np.stack([fn.sample().data for _ in range(num_samples)])
    return np.median(samples, axis=0)


def init_to_mean(site: Dict) -> np.ndarray:
    """Initialize to the prior mean, falling back to a sample."""
    try:
        return np.array(site["fn"].mean.data, copy=True)
    except NotImplementedError:
        return init_to_sample(site)


def init_to_sample(site: Dict) -> np.ndarray:
    """Initialize to a single sample from the prior."""
    return np.array(site["fn"].sample().data, copy=True)


def init_to_value(values: Dict[str, np.ndarray], fallback: Callable = init_to_median) -> Callable:
    """Initialize named sites to given values, falling back otherwise."""

    def _init(site: Dict) -> np.ndarray:
        if site["name"] in values:
            value = values[site["name"]]
            return np.array(value.data if isinstance(value, Tensor) else value, copy=True, dtype=np.float64)
        return fallback(site)

    return _init


class AutoGuide:
    """Base class for automatic guides over a model's latent sample sites."""

    def __init__(self, model: Callable, prefix: str = "auto") -> None:
        self.model = model
        self.prefix = prefix
        self.prototype_trace = None
        self._latent_sites: "OrderedDict[str, Dict]" = OrderedDict()

    # ---------------------------------------------------------------- set-up
    def _setup_prototype(self, *args, **kwargs) -> None:
        blocked_model = block(self.model, hide_fn=lambda m: m["type"] == "param")
        # the outer block hides the prototype run from any handlers that are
        # already active (e.g. the guide trace recorded during an SVI step)
        with block():
            self.prototype_trace = trace(blocked_model).get_trace(*args, **kwargs)
        self._latent_sites = OrderedDict()
        for name, site in self.prototype_trace.nodes.items():
            if site.get("type") == "sample" and not site.get("is_observed"):
                self._latent_sites[name] = site

    def _maybe_setup(self, *args, **kwargs) -> None:
        if self.prototype_trace is None:
            self._setup_prototype(*args, **kwargs)

    @property
    def latent_names(self) -> Tuple[str, ...]:
        return tuple(self._latent_sites)

    def _site_param_name(self, name: str, kind: str) -> str:
        return f"{self.prefix}.{kind}.{name}"

    def _stored_params(self, *names: str) -> Optional[Tuple[Tensor, ...]]:
        """Fetch the named variational parameters if they all already exist.

        Returns ``None`` when any is missing (the caller then runs its init
        path).  Guides call this first so repeated invocations skip their
        ``init_loc_fn`` — init strategies may draw from the prior, and
        re-running them on every guide call would waste both time and RNG
        draws.
        """
        store = get_param_store()
        if all(name in store for name in names):
            return tuple(param(name) for name in names)
        return None

    # -------------------------------------------------------------- interface
    def __call__(self, *args, **kwargs) -> Dict[str, Tensor]:
        raise NotImplementedError

    def median(self, *args, **kwargs) -> Dict[str, np.ndarray]:
        """Point estimates (posterior medians) for all latent sites."""
        raise NotImplementedError

    def get_distribution(self, name: str) -> Distribution:
        """The current variational distribution of one latent site."""
        raise NotImplementedError

    def sample_stacked(self, num_samples: int, *args, **kwargs) -> "OrderedDict[str, Tensor]":
        """Draw ``num_samples`` joint posterior samples per latent site, stacked
        along a new leading axis.

        This is the guide-side entry point of the vectorized posterior-
        predictive path: the returned ``{site: (num_samples, ...)}`` tensors
        can be substituted into a network whose layers broadcast over leading
        weight dimensions, replacing ``num_samples`` traced forward passes
        with one batched pass.  Draws are made sample-by-sample in site order,
        which keeps the RNG stream identical to tracing the guide
        ``num_samples`` times (the looped fallback path).

        The generic implementation does exactly that — traces the guide
        repeatedly and stacks the recorded values — so it is correct for any
        guide (including ones with auxiliary joint latents); subclasses with
        factorized posteriors override it with a cheaper direct-sampling loop.
        """
        self._maybe_setup(*args, **kwargs)
        stacks: "OrderedDict[str, list]" = OrderedDict((name, []) for name in self._latent_sites)
        for _ in range(num_samples):
            tr = trace(self).get_trace(*args, **kwargs)
            for name in stacks:
                stacks[name].append(tr[name]["value"])
        return OrderedDict((name, _stack_tensors(values)) for name, values in stacks.items())

    def _params_initialized(self) -> bool:
        """Whether the guide's variational parameters already exist in the store.

        Subclasses whose fast sampling paths read parameters directly override
        this; the generic trace-based ``sample_stacked`` creates parameters as
        a side effect and does not need it.
        """
        return True

    def _initial_trace_values(self, *args, **kwargs) -> "OrderedDict[str, Tensor]":
        """Run the guide once, instantiating its parameters, and return the
        sampled site values — exactly what the looped path's first call does,
        so first-call RNG streams stay identical."""
        tr = trace(self).get_trace(*args, **kwargs)
        return OrderedDict((name, tr[name]["value"]) for name in self._latent_sites)

    def _stack_marginal_samples(self, num_samples: int, *args, **kwargs) -> "OrderedDict[str, Tensor]":
        """Fast ``sample_stacked`` for factorized guides: draw from each site's
        marginal posterior directly, skipping the effect-handler machinery."""
        self._maybe_setup(*args, **kwargs)
        draws: "OrderedDict[str, list]" = OrderedDict((name, []) for name in self._latent_sites)
        remaining = num_samples
        if remaining > 0 and not self._params_initialized():
            for name, value in self._initial_trace_values(*args, **kwargs).items():
                draws[name].append(value)
            remaining -= 1
        dists = OrderedDict((name, self.get_distribution(name)) for name in self._latent_sites)
        for _ in range(remaining):
            for name, site_dist in dists.items():
                draws[name].append(site_dist.rsample())
        return OrderedDict((name, _stack_tensors(values)) for name, values in draws.items())

    def get_detached_distributions(self, names: Optional[Tuple[str, ...]] = None) -> Dict[str, Distribution]:
        """Return {site: distribution} with parameters detached from autograd.

        This is the hook variational continual learning uses to turn the
        current posterior into the next task's prior (paper Listing 6).
        """
        names = names if names is not None else self.latent_names
        out: Dict[str, Distribution] = OrderedDict()
        for name in names:
            dist = self.get_distribution(name)
            out[name] = _detach_distribution(dist)
        return out


def _detach_distribution(dist: Distribution) -> Distribution:
    if isinstance(dist, Normal):
        return Normal(dist.loc.detach(), dist.scale.detach())
    if isinstance(dist, Delta):
        return Delta(dist.v.detach(), event_dim=dist.event_dim)
    from ..distributions import Independent

    if isinstance(dist, Independent):
        return Independent(_detach_distribution(dist.base_dist), dist.reinterpreted_batch_ndims)
    if isinstance(dist, LowRankMultivariateNormal):
        return LowRankMultivariateNormal(dist.loc.detach(), dist.cov_factor.detach(), dist.cov_diag.detach())
    raise NotImplementedError(f"cannot detach distribution of type {type(dist).__name__}")


class AutoNormal(AutoGuide):
    """Fully factorized Gaussian guide: one ``Normal(loc, scale)`` per site.

    Samples each unobserved site from a diagonal Normal directly (rather than
    through a joint auxiliary variable), which is what makes it compatible
    with local reparameterization and closed-form KL — the motivation given
    in the paper for TyXe's own AutoNormal.
    """

    def __init__(self, model: Callable, init_loc_fn: Callable = init_to_median,
                 init_scale: float = 0.1, prefix: str = "auto") -> None:
        super().__init__(model, prefix=prefix)
        self.init_loc_fn = init_loc_fn
        self.init_scale = init_scale

    def _loc_scale(self, name: str, site: Dict) -> Tuple[Tensor, Tensor]:
        loc_name = self._site_param_name(name, "loc")
        scale_name = self._site_param_name(name, "scale")
        existing = self._stored_params(loc_name, scale_name)
        if existing is not None:
            return existing
        init_loc = self.init_loc_fn(site)
        shape = np.shape(init_loc)
        loc = param(loc_name, np.asarray(init_loc, dtype=np.float64))
        scale = param(scale_name,
                      np.full(shape, self.init_scale, dtype=np.float64),
                      constraint=constraints.positive)
        return loc, scale

    def __call__(self, *args, **kwargs) -> Dict[str, Tensor]:
        self._maybe_setup(*args, **kwargs)
        result: Dict[str, Tensor] = OrderedDict()
        for name, site in self._latent_sites.items():
            loc, scale = self._loc_scale(name, site)
            event_dim = loc.ndim
            result[name] = sample(name, Normal(loc, scale).to_event(event_dim),
                                  infer={"is_auxiliary": False})
        return result

    def get_distribution(self, name: str) -> Distribution:
        store = get_param_store()
        loc = store.get_param(self._site_param_name(name, "loc"))
        scale = store.get_param(self._site_param_name(name, "scale"))
        return Normal(loc, scale).to_event(loc.ndim)

    def _params_initialized(self) -> bool:
        store = get_param_store()
        return all(self._site_param_name(name, "loc") in store
                   and self._site_param_name(name, "scale") in store
                   for name in self._latent_sites)

    def sample_stacked(self, num_samples: int, *args, **kwargs) -> "OrderedDict[str, Tensor]":
        # draw the raw standard-normal noise in the same iteration-major order
        # as num_samples traced guide runs (keeping the RNG stream identical),
        # then reparameterize each site once with a single broadcast
        # ``loc + scale * eps`` instead of per-draw Tensor arithmetic
        self._maybe_setup(*args, **kwargs)
        if not self._params_initialized():
            # the first-ever guide invocation also instantiates the
            # variational parameters; route it through the traced path so the
            # RNG stream (init draws interleaved with the first sample) is
            # identical to the looped path's first call
            return self._stack_marginal_samples(num_samples, *args, **kwargs)
        bases: "OrderedDict[str, Normal]" = OrderedDict()
        for name in self._latent_sites:
            site_dist = self.get_distribution(name)
            base = getattr(site_dist, "base_dist", site_dist)
            if not isinstance(base, Normal):
                return self._stack_marginal_samples(num_samples, *args, **kwargs)
            bases[name] = base
        rng = get_rng()
        shapes = {name: np.broadcast_shapes(base.loc.shape, base.scale.shape)
                  for name, base in bases.items()}
        if len(bases) == 1:
            # a single latent site means the iteration-major stream is one
            # contiguous run of normal draws: fill the whole (S, ...) noise
            # block in one generator call (bit-identical to S separate draws,
            # which consume the underlying stream sequentially either way)
            (name, base), = bases.items()
            eps = rng.standard_normal((num_samples,) + shapes[name])
            return OrderedDict([(name, base.loc + base.scale * Tensor(eps))])
        eps_draws: "OrderedDict[str, list]" = OrderedDict((name, []) for name in bases)
        for _ in range(num_samples):
            for name in bases:
                eps_draws[name].append(rng.standard_normal(shapes[name]))
        return OrderedDict(
            (name, base.loc + base.scale * Tensor(np.stack(eps_draws[name])))
            for name, base in bases.items())

    def median(self, *args, **kwargs) -> Dict[str, np.ndarray]:
        self._maybe_setup(*args, **kwargs)
        store = get_param_store()
        return {name: store.get_param(self._site_param_name(name, "loc")).data.copy()
                for name in self._latent_sites}


class AutoDelta(AutoGuide):
    """Point-estimate (MAP) guide: a Delta distribution per latent site."""

    def __init__(self, model: Callable, init_loc_fn: Callable = init_to_median,
                 prefix: str = "auto") -> None:
        super().__init__(model, prefix=prefix)
        self.init_loc_fn = init_loc_fn

    def __call__(self, *args, **kwargs) -> Dict[str, Tensor]:
        self._maybe_setup(*args, **kwargs)
        result: Dict[str, Tensor] = OrderedDict()
        for name, site in self._latent_sites.items():
            loc_name = self._site_param_name(name, "loc")
            existing = self._stored_params(loc_name)
            if existing is not None:
                loc, = existing
            else:
                loc = param(loc_name, np.asarray(self.init_loc_fn(site), dtype=np.float64))
            result[name] = sample(name, Delta(loc, event_dim=loc.ndim))
        return result

    def get_distribution(self, name: str) -> Distribution:
        store = get_param_store()
        loc = store.get_param(self._site_param_name(name, "loc"))
        return Delta(loc, event_dim=loc.ndim)

    def _params_initialized(self) -> bool:
        store = get_param_store()
        return all(self._site_param_name(name, "loc") in store
                   for name in self._latent_sites)

    def sample_stacked(self, num_samples: int, *args, **kwargs) -> "OrderedDict[str, Tensor]":
        # a Delta "draw" is just the stored point estimate and consumes no RNG,
        # so the stack is a broadcast of each loc — no per-draw Python loop
        self._maybe_setup(*args, **kwargs)
        if not self._params_initialized():
            return self._stack_marginal_samples(num_samples, *args, **kwargs)
        store = get_param_store()
        out: "OrderedDict[str, Tensor]" = OrderedDict()
        for name in self._latent_sites:
            loc = store.get_param(self._site_param_name(name, "loc"))
            out[name] = loc.unsqueeze(0).broadcast_to((num_samples,) + loc.shape)
        return out

    def median(self, *args, **kwargs) -> Dict[str, np.ndarray]:
        self._maybe_setup(*args, **kwargs)
        store = get_param_store()
        return {name: store.get_param(self._site_param_name(name, "loc")).data.copy()
                for name in self._latent_sites}


class AutoLowRankMultivariateNormal(AutoGuide):
    """Joint low-rank-plus-diagonal Gaussian over all latent sites.

    All latents are flattened and concatenated into one vector with a
    ``LowRankMultivariateNormal`` posterior; per-site values are emitted as
    Delta sites sliced out of the joint sample (so that replaying the model
    against the guide trace works exactly as for the factorized guides).
    """

    def __init__(self, model: Callable, init_loc_fn: Callable = init_to_median,
                 init_scale: float = 0.1, rank: int = 10, prefix: str = "auto_lowrank") -> None:
        super().__init__(model, prefix=prefix)
        self.init_loc_fn = init_loc_fn
        self.init_scale = init_scale
        self.rank = rank
        self._site_slices: "OrderedDict[str, Tuple[slice, Tuple[int, ...]]]" = OrderedDict()
        self._total_dim = 0

    def _setup_prototype(self, *args, **kwargs) -> None:
        super()._setup_prototype(*args, **kwargs)
        offset = 0
        self._site_slices = OrderedDict()
        for name, site in self._latent_sites.items():
            shape = site["value"].shape
            size = int(np.prod(shape)) if shape else 1
            self._site_slices[name] = (slice(offset, offset + size), shape)
            offset += size
        self._total_dim = offset

    def _joint_params(self) -> Tuple[Tensor, Tensor, Tensor]:
        existing = self._stored_params(f"{self.prefix}.loc", f"{self.prefix}.cov_factor",
                                       f"{self.prefix}.cov_diag")
        if existing is not None:
            return existing
        init_loc = np.zeros(self._total_dim)
        for name, site in self._latent_sites.items():
            sl, shape = self._site_slices[name]
            init_loc[sl] = np.asarray(self.init_loc_fn(site), dtype=np.float64).reshape(-1)
        # prefix-formatted param names are deliberate: one joint guide may be
        # instantiated per model, each needing a distinct store namespace
        loc = param(f"{self.prefix}.loc", init_loc)  # repro: noqa[R002]
        cov_factor = param(f"{self.prefix}.cov_factor",  # repro: noqa[R002]
                           get_rng().standard_normal((self._total_dim, self.rank)) * self.init_scale * 0.1)
        cov_diag = param(f"{self.prefix}.cov_diag",  # repro: noqa[R002]
                         np.full(self._total_dim, self.init_scale ** 2),
                         constraint=constraints.positive)
        return loc, cov_factor, cov_diag

    def __call__(self, *args, **kwargs) -> Dict[str, Tensor]:
        self._maybe_setup(*args, **kwargs)
        loc, cov_factor, cov_diag = self._joint_params()
        joint = sample(f"_{self.prefix}_latent",  # repro: noqa[R002]
                       LowRankMultivariateNormal(loc, cov_factor, cov_diag),
                       infer={"is_auxiliary": True})
        result: Dict[str, Tensor] = OrderedDict()
        for name in self._latent_sites:
            sl, shape = self._site_slices[name]
            value = joint[sl].reshape(shape) if shape else joint[sl].reshape(())
            result[name] = sample(name, Delta(value, event_dim=len(shape)))
        return result

    def get_distribution(self, name: str) -> Distribution:
        store = get_param_store()
        loc = store.get_param(f"{self.prefix}.loc")
        cov_factor = store.get_param(f"{self.prefix}.cov_factor")
        cov_diag = store.get_param(f"{self.prefix}.cov_diag")
        sl, shape = self._site_slices[name]
        marginal_scale = ((cov_factor ** 2).sum(axis=-1) + cov_diag).sqrt()
        return Normal(loc[sl].reshape(shape), marginal_scale[sl].reshape(shape)).to_event(len(shape))

    def sample_stacked(self, num_samples: int, *args, **kwargs) -> "OrderedDict[str, Tensor]":
        # sample the joint low-rank Gaussian per draw (marginals would lose the
        # cross-site correlations) and slice out the per-site values
        self._maybe_setup(*args, **kwargs)
        loc, cov_factor, cov_diag = self._joint_params()
        joint_dist = LowRankMultivariateNormal(loc, cov_factor, cov_diag)
        draws: "OrderedDict[str, list]" = OrderedDict((name, []) for name in self._latent_sites)
        for _ in range(num_samples):
            joint = joint_dist.rsample()
            for name in self._latent_sites:
                sl, shape = self._site_slices[name]
                draws[name].append(joint[sl].reshape(shape) if shape else joint[sl].reshape(()))
        return OrderedDict((name, _stack_tensors(values)) for name, values in draws.items())

    def median(self, *args, **kwargs) -> Dict[str, np.ndarray]:
        self._maybe_setup(*args, **kwargs)
        store = get_param_store()
        loc = store.get_param(f"{self.prefix}.loc").data
        return {name: loc[sl].reshape(shape).copy() for name, (sl, shape) in self._site_slices.items()}
