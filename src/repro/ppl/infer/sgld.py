"""Stochastic-gradient MCMC: SGLD and preconditioned SGLD.

The paper's Appendix D lists mini-batch MCMC (stochastic gradient Langevin
dynamics, Welling & Teh 2011) as a planned extension — Pyro only ships
full-batch HMC/NUTS.  This module provides that extension for the
reproduction: :class:`SGLD` performs noisy gradient steps on the negative
(mini-batch-rescaled) log-joint of a model, yielding approximate posterior
samples, and :class:`SGLDSampler` wraps it in an MCMC-style driver with the
same ``get_samples`` interface as :class:`repro.ppl.infer.mcmc.MCMC`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ...nn.tensor import Tensor
from ..poutine import condition, trace
from ..rng import get_rng

__all__ = ["SGLD", "SGLDSampler"]


class SGLD:
    """One-step stochastic-gradient Langevin dynamics transition kernel.

    Parameters are updated as ``theta <- theta - 0.5 * eps * grad U(theta) +
    N(0, eps)`` where ``U`` is the negative log-joint estimated from a
    mini-batch (the per-site ``scale`` handling of the likelihoods takes care
    of rescaling the mini-batch log-likelihood to the full dataset).
    ``preconditioned=True`` uses RMSProp-style diagonal preconditioning
    (Li et al., 2016), which is substantially more stable for neural-network
    posteriors.
    """

    def __init__(self, model: Callable, step_size: float = 1e-4,
                 preconditioned: bool = True, beta: float = 0.99, eps: float = 1e-6,
                 temperature: float = 1.0,
                 initial_values: Optional[Dict[str, np.ndarray]] = None) -> None:
        self.model = model
        self.step_size = step_size
        self.preconditioned = preconditioned
        self.beta = beta
        self.eps = eps
        self.temperature = temperature
        self.initial_values = dict(initial_values) if initial_values else {}
        self._site_shapes: "OrderedDict[str, Tuple[int, ...]]" = OrderedDict()
        self._values: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ setup
    def setup(self, *args, **kwargs) -> None:
        """Initialize latent values by tracing the model once."""
        prototype = trace(self.model).get_trace(*args, **kwargs)
        self._site_shapes = OrderedDict()
        self._values = {}
        self._v = {}
        for name, site in prototype.nodes.items():
            if site.get("type") == "sample" and not site.get("is_observed"):
                value = np.array(site["value"].data, copy=True)
                if name in self.initial_values:
                    value = np.array(self.initial_values[name], dtype=np.float64, copy=True)
                    if value.shape != site["value"].shape:
                        raise ValueError(f"initial value for {name!r} has shape {value.shape}, "
                                         f"expected {site['value'].shape}")
                self._site_shapes[name] = value.shape
                self._values[name] = value
                self._v[name] = np.zeros_like(value)
        if not self._values:
            raise ValueError("model has no latent sample sites for SGLD")

    @property
    def latent_names(self) -> Tuple[str, ...]:
        return tuple(self._site_shapes)

    def current_values(self) -> Dict[str, np.ndarray]:
        return {name: value.copy() for name, value in self._values.items()}

    # ------------------------------------------------------------------- step
    def _gradients(self, *args, **kwargs) -> Tuple[float, Dict[str, np.ndarray]]:
        tensors = {name: Tensor(value, requires_grad=True)
                   for name, value in self._values.items()}
        conditioned = condition(self.model, data=tensors)
        tr = trace(conditioned).get_trace(*args, **kwargs)
        log_joint = tr.log_prob_sum()
        potential = -log_joint
        potential.backward()
        grads = {name: (t.grad if t.grad is not None else np.zeros_like(t.data))
                 for name, t in tensors.items()}
        return float(potential.item()), grads

    def step(self, *args, **kwargs) -> float:
        """One SGLD transition on a mini-batch; returns the potential energy."""
        potential, grads = self._gradients(*args, **kwargs)
        rng = get_rng()
        for name, grad in grads.items():
            if self.preconditioned:
                v = self._v[name]
                v *= self.beta
                v += (1.0 - self.beta) * grad ** 2
                preconditioner = 1.0 / (np.sqrt(v) + self.eps)
            else:
                preconditioner = np.ones_like(grad)
            step = self.step_size * preconditioner
            noise_scale = np.sqrt(self.temperature * step)
            self._values[name] = (self._values[name]
                                  - 0.5 * step * grad
                                  + noise_scale * rng.standard_normal(grad.shape))
        return potential


class SGLDSampler:
    """MCMC-style driver around :class:`SGLD` for mini-batch posterior sampling.

    ``run`` iterates over a data loader for a number of epochs, taking one
    SGLD step per mini-batch; samples are collected every ``thinning`` steps
    after ``burn_in`` steps, giving the same ``get_samples()`` layout as the
    full-batch MCMC driver.
    """

    def __init__(self, kernel: SGLD, burn_in: int = 100, thinning: int = 10) -> None:
        self.kernel = kernel
        self.burn_in = burn_in
        self.thinning = thinning
        self._samples: List[Dict[str, np.ndarray]] = []
        self.potentials: List[float] = []

    def run(self, data_loader: Iterable, num_epochs: int) -> None:
        """Iterate mini-batches for ``num_epochs`` epochs, collecting samples."""
        initialized = False
        step_count = 0
        for _ in range(num_epochs):
            for batch in iter(data_loader):
                input_data, targets = batch
                if not initialized:
                    self.kernel.setup(input_data, targets)
                    initialized = True
                potential = self.kernel.step(input_data, targets)
                self.potentials.append(potential)
                step_count += 1
                # thin on the post-burn-in step counter (not the global one),
                # so the number of collected samples is deterministic:
                # num_samples == (total_steps - burn_in) // thinning regardless
                # of how burn_in aligns with the thinning interval
                post_burn_in = step_count - self.burn_in
                if post_burn_in > 0 and post_burn_in % self.thinning == 0:
                    self._samples.append(self.kernel.current_values())
        if not initialized:
            raise ValueError("data loader was empty")

    @property
    def num_samples(self) -> int:
        return len(self._samples)

    def get_samples(self) -> Dict[str, np.ndarray]:
        """Collected posterior samples stacked per site."""
        if not self._samples:
            raise RuntimeError("no samples collected; run() longer or lower burn_in/thinning")
        return {name: np.stack([s[name] for s in self._samples])
                for name in self.kernel.latent_names}
