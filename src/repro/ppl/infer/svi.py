"""Stochastic variational inference: ELBO estimators and the SVI driver.

``Trace_ELBO`` estimates the evidence lower bound with reparameterized Monte
Carlo samples of the guide; ``TraceMeanField_ELBO`` replaces the latent-site
entropy/cross-entropy terms with analytic KL divergences where available
(this is what gives TyXe closed-form KLs for its factorized-Gaussian guide).

Both estimators accept ``vectorize_particles=True``: instead of running one
full model execution per particle, the guide samples are stacked along a new
leading particle dimension (see :func:`repro.ppl.poutine.stack_traces`) and
the model is replayed *once*, carrying all ``num_particles`` weight samples
through a single batched forward pass of the network.  The guide is still
sampled particle-by-particle, which keeps the estimator RNG-identical to the
looped path while removing the ``num_particles``-fold model execution — the
interpreter-bound hot loop.

The guide does not have to cover every latent site of the model.  The replay
runs inside a *sized* ``repro.nn.vectorized_samples`` context, so a latent
site absent from the stacked guide trace draws ``num_particles`` independent
prior samples stacked along the particle axis (one per particle, exactly as
the looped estimator would draw them) instead of a single shared value; its
log-density then sums over the particle axis like every other Monte-Carlo
term.  The batched draw consumes the RNG stream like ``num_particles``
sequential per-particle draws of that site, but the coarse order differs
from the looped path (all guide draws first, then the prior draws), so
partially-guided losses match the looped estimator in distribution — and
bit-for-bit whenever the guide itself consumes no randomness (e.g.
``AutoDelta``) or ``num_particles == 1``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ...nn.functional import vectorized_samples
from ...nn.tensor import Tensor
from ..distributions import Delta as _Delta, kl_divergence
from ..params import get_param_store
from ..poutine import replay, stack_traces, trace
from ..poutine.trace import Trace

__all__ = ["ELBO", "Trace_ELBO", "TraceMeanField_ELBO", "SVI"]


class ELBO:
    """Base class for evidence-lower-bound estimators.

    ``vectorize_particles`` enables the leading-particle-dimension execution
    mode described in the module docstring.  It requires a network whose
    layers broadcast over leading weight dimensions (all ``repro.nn`` linear,
    conv and norm layers do).  Latent sites the guide does not cover are
    sampled from their priors with one independent draw per particle, stacked
    on the particle axis (see the module docstring), so partially-guided
    models vectorize too.
    """

    def __init__(self, num_particles: int = 1, vectorize_particles: bool = False) -> None:
        if num_particles < 1:
            raise ValueError("num_particles must be >= 1")
        self.num_particles = num_particles
        self.vectorize_particles = vectorize_particles

    def _get_traces(self, model: Callable, guide: Callable, *args, **kwargs):
        guide_trace = trace(guide).get_trace(*args, **kwargs)
        model_trace = trace(replay(model, trace=guide_trace)).get_trace(*args, **kwargs)
        return model_trace, guide_trace

    def _get_vectorized_traces(self, model: Callable, guide: Callable, *args, **kwargs):
        """Stack ``num_particles`` guide traces and replay the model once.

        The replay runs inside a sized ``vectorized_samples`` context: latent
        sites the stacked guide trace does not cover draw ``num_particles``
        stacked per-particle prior samples instead of one shared value, so
        their log-densities sum over the particle axis exactly like the
        guide-covered sites'.
        """
        guide_traces = [trace(guide).get_trace(*args, **kwargs)
                        for _ in range(self.num_particles)]
        guide_trace = stack_traces(guide_traces)
        with vectorized_samples(1, sizes=(self.num_particles,)):
            model_trace = trace(replay(model, trace=guide_trace)).get_trace(*args, **kwargs)
        return model_trace, guide_trace

    def differentiable_loss(self, model: Callable, guide: Callable, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def loss(self, model: Callable, guide: Callable, *args, **kwargs) -> float:
        return float(self.differentiable_loss(model, guide, *args, **kwargs).item())


class Trace_ELBO(ELBO):
    """Monte Carlo ELBO: ``E_q[log p(x, z) - log q(z)]`` with reparameterized samples."""

    def differentiable_loss(self, model: Callable, guide: Callable, *args, **kwargs) -> Tensor:
        if self.vectorize_particles:
            # one batched execution: every log_prob_sum already sums over the
            # particle dimension, so a single division by K yields the average
            model_trace, guide_trace = self._get_vectorized_traces(model, guide, *args, **kwargs)
            elbo = model_trace.log_prob_sum() - guide_trace.log_prob_sum()
            return -elbo / float(self.num_particles)
        total: Optional[Tensor] = None
        for _ in range(self.num_particles):
            model_trace, guide_trace = self._get_traces(model, guide, *args, **kwargs)
            elbo = model_trace.log_prob_sum() - guide_trace.log_prob_sum()
            total = elbo if total is None else total + elbo
        return -total / float(self.num_particles)


class TraceMeanField_ELBO(ELBO):
    """ELBO using analytic KL terms for latent sites where they are available.

    ``ELBO = E_q[log p(x | z)] - sum_sites KL(q(z_site) || p(z_site))``
    Falls back to the Monte Carlo estimate (log p - log q at the sample) for
    sites without a registered analytic KL.
    """

    def differentiable_loss(self, model: Callable, guide: Callable, *args, **kwargs) -> Tensor:
        if self.vectorize_particles:
            # Monte-Carlo terms sum over the stacked particle dimension and
            # are rescaled by 1/K; the analytic KL terms are sample-independent
            # and appear exactly once, so they enter with full weight.
            model_trace, guide_trace = self._get_vectorized_traces(model, guide, *args, **kwargs)
            return -self._particle_elbo(model_trace, guide_trace,
                                        mc_weight=1.0 / float(self.num_particles))
        total: Optional[Tensor] = None
        for _ in range(self.num_particles):
            model_trace, guide_trace = self._get_traces(model, guide, *args, **kwargs)
            particle = self._particle_elbo(model_trace, guide_trace)
            total = particle if total is None else total + particle
        return -total / float(self.num_particles)

    def _particle_elbo(self, model_trace: Trace, guide_trace: Trace,
                       mc_weight: float = 1.0) -> Tensor:
        model_trace.compute_log_prob()
        guide_trace.compute_log_prob()
        elbo: Optional[Tensor] = None

        def _add(term: Tensor, is_mc: bool = True):
            nonlocal elbo
            if is_mc and mc_weight != 1.0:
                term = term * mc_weight
            elbo = term if elbo is None else elbo + term

        # observed sites: expected log likelihood
        for name in model_trace.observation_nodes():
            _add(model_trace[name]["log_prob_sum"])
        # latent sites: -KL(q || p), analytic where possible
        for name in model_trace.stochastic_nodes():
            model_site = model_trace[name]
            if name not in guide_trace:
                # latent with no guide site (e.g. sampled from the prior)
                _add(model_site["log_prob_sum"])
                continue
            guide_site = guide_trace[name]
            if guide_site.get("infer", {}).get("is_auxiliary"):
                continue
            scale = model_site.get("scale", 1.0)
            try:
                kl = kl_divergence(guide_site["fn"], model_site["fn"]).sum()
                # Delta guide fns are rebuilt around the stacked per-particle
                # values by stack_traces, so their "analytic" KL sums over the
                # particle axis and needs the Monte-Carlo 1/K weight; genuine
                # analytic KLs (e.g. Normal/Normal) are sample-independent.
                kl_is_stacked = isinstance(guide_site["fn"], _Delta)
                _add(-kl * scale if scale != 1.0 else -kl, is_mc=kl_is_stacked)
            except NotImplementedError:
                _add(model_site["log_prob_sum"] - guide_site["log_prob_sum"])
        # auxiliary guide sites (e.g. the joint latent of a low-rank guide)
        for name in guide_trace.stochastic_nodes():
            guide_site = guide_trace[name]
            if name not in model_trace and not guide_site.get("infer", {}).get("is_auxiliary"):
                _add(-guide_site["log_prob_sum"])
            elif guide_site.get("infer", {}).get("is_auxiliary"):
                _add(-guide_site["log_prob_sum"])
        return elbo if elbo is not None else Tensor(0.0)


class SVI:
    """Stochastic variational inference driver (``pyro.infer.SVI`` equivalent)."""

    def __init__(self, model: Callable, guide: Callable, optim, loss: Optional[ELBO] = None) -> None:
        self.model = model
        self.guide = guide
        self.optim = optim
        self.loss = loss if loss is not None else Trace_ELBO()

    def step(self, *args, **kwargs) -> float:
        """One gradient step on the negative ELBO; returns the loss value."""
        store = get_param_store()
        loss = self.loss.differentiable_loss(self.model, self.guide, *args, **kwargs)
        for p in store.values():
            p.grad = None
        loss.backward()
        params_with_grad = [p for _, p in store.named_parameters() if p.grad is not None]
        if params_with_grad:
            self.optim(params_with_grad)
        for p in store.values():
            p.grad = None
        return float(loss.item())

    def evaluate_loss(self, *args, **kwargs) -> float:
        """Compute the loss without taking a gradient step."""
        return self.loss.loss(self.model, self.guide, *args, **kwargs)
