"""Inference algorithms: SVI with autoguides, and MCMC (HMC/NUTS)."""

from . import autoguide
from .autoguide import (AutoDelta, AutoGuide, AutoLowRankMultivariateNormal,
                        AutoNormal, init_to_mean, init_to_median, init_to_sample,
                        init_to_value)
from .mcmc import HMC, MCMC, NUTS
from .sgld import SGLD, SGLDSampler
from .svi import ELBO, SVI, TraceMeanField_ELBO, Trace_ELBO

__all__ = [
    "autoguide",
    "AutoGuide",
    "AutoNormal",
    "AutoDelta",
    "AutoLowRankMultivariateNormal",
    "init_to_median",
    "init_to_mean",
    "init_to_sample",
    "init_to_value",
    "SVI",
    "ELBO",
    "Trace_ELBO",
    "TraceMeanField_ELBO",
    "HMC",
    "NUTS",
    "MCMC",
    "SGLD",
    "SGLDSampler",
]
