"""Markov chain Monte Carlo: HMC and NUTS kernels plus the MCMC driver.

The kernels operate on the flattened vector of all continuous latent sample
sites of a model.  The potential energy is the negative (scaled) log-joint of
the model conditioned on the latent values, differentiated with the autograd
engine.  This mirrors ``pyro.infer.mcmc.{HMC, NUTS, MCMC}`` closely enough
that ``tyxe.MCMC_BNN`` can accept either kernel as its "guide" argument, as
in the paper.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ...nn.tensor import Tensor
from ..poutine import condition, trace
from ..rng import get_rng

__all__ = ["HMC", "NUTS", "MCMC"]


class _LatentLayout:
    """Bookkeeping for flattening a dict of latent sites into one vector."""

    def __init__(self, site_shapes: "OrderedDict[str, Tuple[int, ...]]") -> None:
        self.site_shapes = site_shapes
        self.slices: "OrderedDict[str, slice]" = OrderedDict()
        offset = 0
        for name, shape in site_shapes.items():
            size = int(np.prod(shape)) if shape else 1
            self.slices[name] = slice(offset, offset + size)
            offset += size
        self.total_dim = offset

    def unflatten(self, z: np.ndarray) -> Dict[str, np.ndarray]:
        return {name: z[sl].reshape(shape)
                for (name, shape), sl in zip(self.site_shapes.items(), self.slices.values())}

    def flatten(self, values: Dict[str, np.ndarray]) -> np.ndarray:
        z = np.zeros(self.total_dim)
        for name, sl in self.slices.items():
            z[sl] = np.asarray(values[name]).reshape(-1)
        return z


class _Kernel:
    """Shared machinery: potential energy, gradients, leapfrog integration."""

    def __init__(self, model: Callable, step_size: float = 0.1,
                 adapt_step_size: bool = True, target_accept_prob: float = 0.8) -> None:
        self.model = model
        self.step_size = step_size
        self.adapt_step_size = adapt_step_size
        self.target_accept_prob = target_accept_prob
        self.layout: Optional[_LatentLayout] = None
        self._args: Tuple = ()
        self._kwargs: Dict = {}
        # dual-averaging state
        self._mu = math.log(10.0 * step_size)
        self._log_eps_bar = 0.0
        self._h_bar = 0.0
        self._adapt_t = 0

    # ------------------------------------------------------------------ setup
    def setup(self, *args, **kwargs) -> np.ndarray:
        self._args, self._kwargs = args, kwargs
        prototype = trace(self.model).get_trace(*args, **kwargs)
        site_shapes: "OrderedDict[str, Tuple[int, ...]]" = OrderedDict()
        init_values: Dict[str, np.ndarray] = {}
        for name, site in prototype.nodes.items():
            if site.get("type") == "sample" and not site.get("is_observed"):
                value = site["value"]
                site_shapes[name] = value.shape
                init_values[name] = np.array(value.data, copy=True)
        if not site_shapes:
            raise ValueError("model has no latent sample sites for MCMC")
        self.layout = _LatentLayout(site_shapes)
        self._mu = math.log(10.0 * self.step_size)
        return self.layout.flatten(init_values)

    # ------------------------------------------------- potential and gradient
    def potential_and_grad(self, z: np.ndarray) -> Tuple[float, np.ndarray]:
        values = {name: Tensor(arr, requires_grad=True)
                  for name, arr in self.layout.unflatten(z).items()}
        conditioned = condition(self.model, data=values)
        tr = trace(conditioned).get_trace(*self._args, **self._kwargs)
        log_joint = tr.log_prob_sum()
        potential = -log_joint
        potential.backward()
        grad = np.concatenate([
            (values[name].grad if values[name].grad is not None else np.zeros(values[name].shape)).reshape(-1)
            for name in self.layout.site_shapes
        ])
        return float(potential.item()), grad

    def potential(self, z: np.ndarray) -> float:
        return self.potential_and_grad(z)[0]

    # --------------------------------------------------------------- leapfrog
    def leapfrog(self, z: np.ndarray, r: np.ndarray, grad: np.ndarray,
                 step_size: float) -> Tuple[np.ndarray, np.ndarray, float, np.ndarray]:
        r = r - 0.5 * step_size * grad
        z = z + step_size * r
        potential, grad = self.potential_and_grad(z)
        r = r - 0.5 * step_size * grad
        return z, r, potential, grad

    @staticmethod
    def kinetic(r: np.ndarray) -> float:
        return 0.5 * float(np.dot(r, r))

    # --------------------------------------------------------- step-size adapt
    def adapt(self, accept_prob: float, gamma: float = 0.05, t0: float = 10.0, kappa: float = 0.75) -> None:
        """Nesterov dual averaging towards the target acceptance probability."""
        if not self.adapt_step_size:
            return
        self._adapt_t += 1
        t = self._adapt_t
        self._h_bar = (1 - 1 / (t + t0)) * self._h_bar + (self.target_accept_prob - accept_prob) / (t + t0)
        log_eps = self._mu - math.sqrt(t) / gamma * self._h_bar
        eta = t ** (-kappa)
        self._log_eps_bar = eta * log_eps + (1 - eta) * self._log_eps_bar
        self.step_size = math.exp(log_eps)

    def finalize_adaptation(self) -> None:
        if self.adapt_step_size and self._adapt_t > 0:
            self.step_size = math.exp(self._log_eps_bar)

    def sample(self, z: np.ndarray, adapt: bool) -> Tuple[np.ndarray, Dict[str, float]]:
        raise NotImplementedError


class HMC(_Kernel):
    """Hamiltonian Monte Carlo with a fixed number of leapfrog steps."""

    def __init__(self, model: Callable, step_size: float = 0.1, num_steps: int = 10,
                 adapt_step_size: bool = True, target_accept_prob: float = 0.8) -> None:
        super().__init__(model, step_size, adapt_step_size, target_accept_prob)
        self.num_steps = num_steps

    def sample(self, z: np.ndarray, adapt: bool) -> Tuple[np.ndarray, Dict[str, float]]:
        rng = get_rng()
        potential0, grad = self.potential_and_grad(z)
        r0 = rng.standard_normal(z.shape)
        h0 = potential0 + self.kinetic(r0)
        z_new, r_new = z.copy(), r0.copy()
        potential_new = potential0
        for _ in range(self.num_steps):
            z_new, r_new, potential_new, grad = self.leapfrog(z_new, r_new, grad, self.step_size)
        h_new = potential_new + self.kinetic(r_new)
        log_accept = h0 - h_new
        accept_prob = min(1.0, math.exp(min(log_accept, 0.0)))
        accepted = math.log(max(rng.random(), 1e-300)) < log_accept
        if adapt:
            self.adapt(accept_prob)
        stats = {"accept_prob": accept_prob, "step_size": self.step_size,
                 "potential": potential_new if accepted else potential0}
        return (z_new if accepted else z), stats


class NUTS(_Kernel):
    """No-U-Turn Sampler (Hoffman & Gelman, 2014), recursive binary-tree variant."""

    def __init__(self, model: Callable, step_size: float = 0.1, max_tree_depth: int = 6,
                 adapt_step_size: bool = True, target_accept_prob: float = 0.8) -> None:
        super().__init__(model, step_size, adapt_step_size, target_accept_prob)
        self.max_tree_depth = max_tree_depth
        self._delta_max = 1000.0

    def _build_tree(self, z, r, grad, log_u, direction, depth, h0, rng):
        if depth == 0:
            step = direction * self.step_size
            z1, r1, potential1, grad1 = self.leapfrog(z, r, grad, step)
            h1 = potential1 + self.kinetic(r1)
            n1 = 1 if log_u <= -h1 else 0
            s1 = 1 if log_u < self._delta_max - h1 else 0
            accept_prob = min(1.0, math.exp(min(h0 - h1, 0.0)))
            return z1, r1, grad1, z1, r1, grad1, z1, n1, s1, accept_prob, 1
        # recursion: build left and right subtrees
        (z_minus, r_minus, grad_minus, z_plus, r_plus, grad_plus, z_prop, n1, s1,
         alpha, n_alpha) = self._build_tree(z, r, grad, log_u, direction, depth - 1, h0, rng)
        if s1 == 1:
            if direction == -1:
                (z_minus, r_minus, grad_minus, _, _, _, z_prop2, n2, s2,
                 alpha2, n_alpha2) = self._build_tree(z_minus, r_minus, grad_minus, log_u,
                                                      direction, depth - 1, h0, rng)
            else:
                (_, _, _, z_plus, r_plus, grad_plus, z_prop2, n2, s2,
                 alpha2, n_alpha2) = self._build_tree(z_plus, r_plus, grad_plus, log_u,
                                                      direction, depth - 1, h0, rng)
            if n1 + n2 > 0 and rng.random() < n2 / max(n1 + n2, 1):
                z_prop = z_prop2
            alpha += alpha2
            n_alpha += n_alpha2
            delta = z_plus - z_minus
            s1 = s2 * int(np.dot(delta, r_minus) >= 0) * int(np.dot(delta, r_plus) >= 0)
            n1 += n2
        return z_minus, r_minus, grad_minus, z_plus, r_plus, grad_plus, z_prop, n1, s1, alpha, n_alpha

    def sample(self, z: np.ndarray, adapt: bool) -> Tuple[np.ndarray, Dict[str, float]]:
        rng = get_rng()
        potential0, grad0 = self.potential_and_grad(z)
        r0 = rng.standard_normal(z.shape)
        h0 = potential0 + self.kinetic(r0)
        log_u = math.log(max(rng.random(), 1e-300)) - h0
        z_minus = z_plus = z_prop = z.copy()
        r_minus = r_plus = r0.copy()
        grad_minus = grad_plus = grad0.copy()
        n, s, depth = 1, 1, 0
        alpha_sum, n_alpha_sum = 0.0, 0
        while s == 1 and depth < self.max_tree_depth:
            direction = 1 if rng.random() < 0.5 else -1
            if direction == -1:
                (z_minus, r_minus, grad_minus, _, _, _, z_prop1, n1, s1,
                 alpha, n_alpha) = self._build_tree(z_minus, r_minus, grad_minus, log_u,
                                                    direction, depth, h0, rng)
            else:
                (_, _, _, z_plus, r_plus, grad_plus, z_prop1, n1, s1,
                 alpha, n_alpha) = self._build_tree(z_plus, r_plus, grad_plus, log_u,
                                                    direction, depth, h0, rng)
            if s1 == 1 and rng.random() < min(1.0, n1 / max(n, 1)):
                z_prop = z_prop1
            n += n1
            alpha_sum += alpha
            n_alpha_sum += n_alpha
            delta = z_plus - z_minus
            s = s1 * int(np.dot(delta, r_minus) >= 0) * int(np.dot(delta, r_plus) >= 0)
            depth += 1
        accept_prob = alpha_sum / max(n_alpha_sum, 1)
        if adapt:
            self.adapt(accept_prob)
        stats = {"accept_prob": accept_prob, "step_size": self.step_size, "tree_depth": depth}
        return z_prop, stats


class MCMC:
    """MCMC driver: warmup with adaptation, then sampling (``pyro.infer.MCMC``)."""

    def __init__(self, kernel: _Kernel, num_samples: int, warmup_steps: int = 100,
                 disable_progbar: bool = True) -> None:
        self.kernel = kernel
        self.num_samples = num_samples
        self.warmup_steps = warmup_steps
        self.disable_progbar = disable_progbar
        self._samples: Dict[str, np.ndarray] = {}
        self.diagnostics: List[Dict[str, float]] = []

    def run(self, *args, **kwargs) -> None:
        z = self.kernel.setup(*args, **kwargs)
        for _ in range(self.warmup_steps):
            z, _ = self.kernel.sample(z, adapt=True)
        self.kernel.finalize_adaptation()
        collected: List[np.ndarray] = []
        for _ in range(self.num_samples):
            z, stats = self.kernel.sample(z, adapt=False)
            collected.append(z.copy())
            self.diagnostics.append(stats)
        stacked = np.stack(collected)
        layout = self.kernel.layout
        self._samples = {
            name: stacked[:, sl].reshape((self.num_samples,) + shape)
            for (name, shape), sl in zip(layout.site_shapes.items(), layout.slices.values())
        }

    def get_samples(self) -> Dict[str, np.ndarray]:
        """Posterior samples per latent site, stacked along a leading axis."""
        if not self._samples:
            raise RuntimeError("call run() before get_samples()")
        return self._samples

    def summary(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Posterior mean and standard deviation of every latent site."""
        return {name: {"mean": values.mean(axis=0), "std": values.std(axis=0)}
                for name, values in self.get_samples().items()}
